#include "anonymize/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/strings.h"

namespace mdc {
namespace {

// Rows are embedded in [0,1]^d: numeric QI columns min-max scaled,
// categorical columns mapped to the index of their (sorted) distinct
// value, scaled. This gives the greedy loop a cheap distance and spread.
struct Embedding {
  std::vector<std::vector<double>> coords;  // [row][qi-dim].

  static StatusOr<Embedding> Build(const Dataset& data,
                                   const std::vector<size_t>& qi_columns) {
    Embedding embedding;
    embedding.coords.assign(data.row_count(), {});
    for (size_t column : qi_columns) {
      const bool is_string =
          data.schema().attribute(column).type == AttributeType::kString;
      if (is_string) {
        std::vector<Value> distinct = data.DistinctValues(column);
        std::map<std::string, double> position;
        for (size_t i = 0; i < distinct.size(); ++i) {
          position[distinct[i].AsString()] =
              distinct.size() > 1
                  ? static_cast<double>(i) /
                        static_cast<double>(distinct.size() - 1)
                  : 0.0;
        }
        for (size_t row = 0; row < data.row_count(); ++row) {
          embedding.coords[row].push_back(
              position.at(data.cell(row, column).AsString()));
        }
      } else {
        MDC_ASSIGN_OR_RETURN(auto range, data.NumericRange(column));
        double span = range.second - range.first;
        for (size_t row = 0; row < data.row_count(); ++row) {
          double v = data.cell(row, column).AsNumber();
          embedding.coords[row].push_back(
              span > 0.0 ? (v - range.first) / span : 0.0);
        }
      }
    }
    return embedding;
  }

  double Distance(size_t a, size_t b) const {
    double sum = 0.0;
    for (size_t d = 0; d < coords[a].size(); ++d) {
      double diff = coords[a][d] - coords[b][d];
      sum += diff * diff;
    }
    return std::sqrt(sum);
  }
};

// Spread of a cluster if `row` joined: sum over dimensions of the
// resulting (max - min).
double SpreadWith(const Embedding& embedding,
                  const std::vector<double>& lo, const std::vector<double>& hi,
                  size_t row) {
  double spread = 0.0;
  for (size_t d = 0; d < lo.size(); ++d) {
    double new_lo = std::min(lo[d], embedding.coords[row][d]);
    double new_hi = std::max(hi[d], embedding.coords[row][d]);
    spread += new_hi - new_lo;
  }
  return spread;
}

// Range label per cluster and column, Mondrian-style.
std::string ClusterLabel(const Dataset& data,
                         const std::vector<size_t>& members, size_t column) {
  const bool is_string =
      data.schema().attribute(column).type == AttributeType::kString;
  if (is_string) {
    std::string lo = data.cell(members[0], column).AsString();
    std::string hi = lo;
    for (size_t row : members) {
      const std::string& v = data.cell(row, column).AsString();
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return lo == hi ? lo : "[" + lo + ".." + hi + "]";
  }
  double lo = data.cell(members[0], column).AsNumber();
  double hi = lo;
  for (size_t row : members) {
    double v = data.cell(row, column).AsNumber();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == hi) return FormatCompact(lo);
  return "[" + FormatCompact(lo) + "-" + FormatCompact(hi) + "]";
}

}  // namespace

StatusOr<ClusteringResult> KMemberClusterAnonymize(
    std::shared_ptr<const Dataset> original, const ClusteringConfig& config,
    RunContext* run) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (original == nullptr) {
    return Status::InvalidArgument("null original dataset");
  }
  const Schema& schema = original->schema();
  std::vector<size_t> qi_columns = schema.QuasiIdentifierIndices();
  if (qi_columns.empty()) {
    return Status::FailedPrecondition(
        "clustering requires at least one quasi-identifier column");
  }
  const size_t n = original->row_count();
  if (n < static_cast<size_t>(config.k)) {
    return Status::Infeasible("clustering: fewer than k rows");
  }
  MDC_ASSIGN_OR_RETURN(Embedding embedding,
                       Embedding::Build(*original, qi_columns));

  std::vector<bool> assigned(n, false);
  std::vector<std::vector<size_t>> clusters;
  size_t remaining = n;
  size_t previous_seed = 0;  // Deterministic: first row seeds round one.

  bool truncated = false;
  while (remaining >= static_cast<size_t>(config.k)) {
    if (Status status = RunContext::Check(run); !status.ok()) {
      if (clusters.empty()) return status;
      truncated = true;  // Leftover pass below absorbs unassigned rows.
      break;
    }
    MDC_FAILPOINT("clustering.cluster");
    // Seed: the unassigned row farthest from the previous seed.
    size_t seed = n;
    double best_distance = -1.0;
    for (size_t row = 0; row < n; ++row) {
      if (assigned[row]) continue;
      double distance = clusters.empty()
                            ? 0.0
                            : embedding.Distance(previous_seed, row);
      if (seed == n || distance > best_distance) {
        seed = row;
        best_distance = distance;
      }
    }
    MDC_CHECK_LT(seed, n);

    std::vector<size_t> members = {seed};
    assigned[seed] = true;
    std::vector<double> lo = embedding.coords[seed];
    std::vector<double> hi = embedding.coords[seed];
    bool aborted = false;
    while (members.size() < static_cast<size_t>(config.k)) {
      if (Status status = RunContext::Check(run); !status.ok()) {
        // A partial cluster would break k-anonymity; un-assign its rows
        // so the leftover pass folds them into completed clusters.
        for (size_t member : members) assigned[member] = false;
        if (clusters.empty()) return status;
        truncated = true;
        aborted = true;
        break;
      }
      size_t best_row = n;
      double best_spread = std::numeric_limits<double>::infinity();
      for (size_t row = 0; row < n; ++row) {
        if (assigned[row]) continue;
        double spread = SpreadWith(embedding, lo, hi, row);
        if (spread < best_spread) {
          best_spread = spread;
          best_row = row;
        }
      }
      MDC_CHECK_LT(best_row, n);
      members.push_back(best_row);
      assigned[best_row] = true;
      for (size_t d = 0; d < lo.size(); ++d) {
        lo[d] = std::min(lo[d], embedding.coords[best_row][d]);
        hi[d] = std::max(hi[d], embedding.coords[best_row][d]);
      }
    }
    if (aborted) break;
    remaining -= members.size();
    previous_seed = seed;
    clusters.push_back(std::move(members));
  }

  // Leftovers join the nearest cluster (by distance to its first member).
  for (size_t row = 0; row < n; ++row) {
    if (assigned[row]) continue;
    size_t best_cluster = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < clusters.size(); ++c) {
      double distance = embedding.Distance(clusters[c][0], row);
      if (distance < best_distance) {
        best_distance = distance;
        best_cluster = c;
      }
    }
    clusters[best_cluster].push_back(row);
    assigned[row] = true;
  }

  // Release with per-cluster range labels.
  MDC_ASSIGN_OR_RETURN(Schema release_schema,
                       Generalizer::ReleaseSchema(schema, qi_columns));
  std::vector<std::vector<std::string>> labels(n);
  for (const std::vector<size_t>& members : clusters) {
    std::vector<std::string> cluster_labels;
    for (size_t column : qi_columns) {
      cluster_labels.push_back(ClusterLabel(*original, members, column));
    }
    for (size_t row : members) labels[row] = cluster_labels;
  }
  Dataset release(release_schema);
  for (size_t row = 0; row < n; ++row) {
    Dataset::Row out = original->row(row);
    for (size_t i = 0; i < qi_columns.size(); ++i) {
      out[qi_columns[i]] = Value(labels[row][i]);
    }
    MDC_RETURN_IF_ERROR(release.AppendRow(std::move(out)));
  }

  ClusteringResult result;
  result.cluster_count = clusters.size();
  result.run_stats = RunContext::Stats(run, truncated);
  result.anonymization =
      Anonymization{std::move(original),
                    std::move(release),
                    qi_columns,
                    std::vector<bool>(n, false),
                    std::nullopt,
                    "k-member-clustering"};
  result.partition =
      EquivalencePartition::FromAnonymization(result.anonymization);
  return result;
}

}  // namespace mdc
