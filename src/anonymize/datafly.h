// Sweeney's Datafly algorithm (greedy full-domain generalization).
//
// Datafly repeatedly generalizes the quasi-identifier whose current labels
// have the most distinct values until every equivalence class has size
// >= k or the remaining undersized rows fit in the suppression budget,
// which are then suppressed. Greedy and fast, but not utility-optimal —
// exactly the kind of algorithm the paper's comparison framework is meant
// to evaluate against others.

#ifndef MDC_ANONYMIZE_DATAFLY_H_
#define MDC_ANONYMIZE_DATAFLY_H_

#include <memory>

#include "anonymize/full_domain.h"

namespace mdc {

struct DataflyConfig {
  int k = 2;
  SuppressionBudget suppression;
};

struct DataflyResult {
  NodeEvaluation evaluation;
  LatticeNode node;        // The full-domain node Datafly stopped at.
  int generalization_steps = 0;
  RunStats run_stats;
};

// Runs Datafly over the quasi-identifiers of `original` (all of which must
// be bound in `hierarchies`). Fails with kInfeasible if even the fully
// generalized table cannot satisfy k (i.e. the table has fewer than k
// non-suppressible rows). Budget expiry mid-climb returns the budget
// Status (the greedy walk has no feasible best-so-far before it ends).
StatusOr<DataflyResult> DataflyAnonymize(std::shared_ptr<const Dataset> original,
                                         const HierarchySet& hierarchies,
                                         const DataflyConfig& config,
                                         RunContext* run = nullptr);

}  // namespace mdc

#endif  // MDC_ANONYMIZE_DATAFLY_H_
