// Greedy top-down specialization and bottom-up generalization — the
// paper's related-work baselines [3] (Fung, Wang, Yu, ICDE 2005) and
// [20] (Wang, Yu, Chakraborty, ICDM 2004), adapted to full-domain
// (global) recoding over the generalization lattice:
//
//  - TopDownSpecialize starts from the fully generalized table and
//    repeatedly SPECIALIZES one attribute (decrements one lattice
//    coordinate), always picking the step with the largest utility gain
//    per step, as long as the release stays k-anonymous within the
//    suppression budget. Deterministic; ends at a minimal feasible node
//    along the chosen path.
//  - BottomUpGeneralize starts from the raw table and repeatedly
//    GENERALIZES the attribute with the best privacy-gain-per-loss ratio
//    until the release is feasible (the ILoss/privacy-gain trade-off of
//    [20], with our pluggable loss in place of their information gain).
//
// Both are greedy global-recoding interpretations of the cited
// algorithms (the originals operate on specialization trees / itemsets);
// DESIGN.md records the adaptation. Both satisfy the same contract as
// the other full-domain algorithms and are compared by the same
// framework.

#ifndef MDC_ANONYMIZE_TOP_DOWN_H_
#define MDC_ANONYMIZE_TOP_DOWN_H_

#include <memory>

#include "anonymize/full_domain.h"

namespace mdc {

struct GreedyWalkConfig {
  int k = 2;
  SuppressionBudget suppression;
};

struct GreedyWalkResult {
  NodeEvaluation evaluation;
  LatticeNode node;
  int steps = 0;  // Lattice moves taken.
  RunStats run_stats;
};

// Budget expiry degrades gracefully: the walk starts from the fully
// generalized (feasible) table, so the node reached when the budget runs
// out is returned with run_stats.truncated set — k-anonymous, just less
// specialized than the unbudgeted result.
StatusOr<GreedyWalkResult> TopDownSpecialize(
    std::shared_ptr<const Dataset> original, const HierarchySet& hierarchies,
    const GreedyWalkConfig& config, const LossFn& loss = ProxyLoss,
    RunContext* run = nullptr);

// The bottom-up walk is infeasible until it terminates, so budget expiry
// returns the budget Status (no best-so-far exists to degrade to).
StatusOr<GreedyWalkResult> BottomUpGeneralize(
    std::shared_ptr<const Dataset> original, const HierarchySet& hierarchies,
    const GreedyWalkConfig& config, const LossFn& loss = ProxyLoss,
    RunContext* run = nullptr);

}  // namespace mdc

#endif  // MDC_ANONYMIZE_TOP_DOWN_H_
