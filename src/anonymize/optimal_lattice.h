// Optimal full-domain lattice search with monotonicity pruning.
//
// Walks the generalization lattice bottom-up by height. A node whose direct
// predecessor already satisfies the privacy predicate is satisfying by
// monotonicity and is never re-evaluated; the *minimal* satisfying nodes
// (no satisfying predecessor) are collected and the loss-minimizing one is
// returned. With the k-anonymity predicate this is the guaranteed-optimal
// search in the spirit of Incognito / Bayardo–Agrawal restricted to
// full-domain generalization; the predicate is pluggable so distinct
// ℓ-diversity, entropy ℓ-diversity and t-closeness (all monotone under
// full-domain generalization) can be searched the same way.

#ifndef MDC_ANONYMIZE_OPTIMAL_LATTICE_H_
#define MDC_ANONYMIZE_OPTIMAL_LATTICE_H_

#include <functional>
#include <memory>
#include <vector>

#include "anonymize/full_domain.h"

namespace mdc {

// Extra constraint evaluated on the post-suppression release; suppressed
// rows are exempt inside the implementations (see privacy/). The predicate
// MUST be monotone under generalization or the pruning is unsound;
// OptimalSearchConfig::verify_monotonicity enables a spot check.
using PrivacyPredicate = std::function<bool(const Anonymization&,
                                            const EquivalencePartition&)>;

struct EncodedBundle;

struct OptimalSearchConfig {
  int k = 2;  // k-anonymity + suppression policy applied at every node.
  SuppressionBudget suppression;
  // Optional extra predicate (ℓ-diversity, t-closeness, ...) that must also
  // hold; null means k-anonymity only.
  PrivacyPredicate extra_predicate;
  // If true, every satisfying minimal node's successors are re-checked and
  // a violation returns kFailedPrecondition instead of a wrong optimum.
  bool verify_monotonicity = false;
  // Worker threads for node evaluation; 1 = serial, <= 0 = one per
  // hardware thread. Nodes of one lattice height evaluate concurrently
  // (monotonicity pruning only looks one height down); results are
  // identical for any thread count and step-budget expiry lands on the
  // same node as a serial run (deadlines at wave granularity).
  int threads = 1;
  // Prebuilt encode/translate tables for exactly this (dataset,
  // hierarchies) pair (see EncodedBundle in encoded_eval.h). Null builds
  // them fresh; results, budgets, and deterministic counters are identical
  // either way.
  std::shared_ptr<const EncodedBundle> encoded;
};

// Resumable sweep position: `next_index` points into the deterministic
// AllNodesByHeight order; `satisfying` is the monotonicity bitmap over
// lattice indices accumulated so far. The best evaluation itself is not
// serialized — `best_node` is re-evaluated on resume (EvaluateNode is
// deterministic), which keeps checkpoints small.
struct OptimalLatticeCheckpoint final : Checkpointable {
  uint64_t next_index = 0;
  std::string satisfying;  // One byte per lattice node, 0 or 1.
  std::vector<LatticeNode> minimal_nodes;
  LatticeNode best_node;
  double best_loss = 0.0;
  uint64_t nodes_evaluated = 0;
  bool captured = false;

  bool has_state() const override { return captured; }
  StatusOr<std::string> SaveCheckpoint() const override;
  Status ResumeFrom(std::string_view bytes) override;
};

struct OptimalSearchResult {
  std::vector<LatticeNode> minimal_nodes;
  LatticeNode best_node;
  NodeEvaluation best;
  double best_loss = 0.0;
  size_t nodes_evaluated = 0;  // Predicate evaluations (pruning metric).
  uint64_t lattice_size = 0;
  RunStats run_stats;
};

// Budget expiry degrades gracefully: minimal nodes found before expiry are
// returned with run_stats.truncated set (each is genuinely minimal and
// satisfying; the sweep just did not reach the rest of the lattice). With
// no satisfying node found yet, the budget Status is returned. When
// `checkpoint` is non-null, budget expiry additionally captures the sweep
// position into it, and a checkpoint with state restarts the sweep there.
StatusOr<OptimalSearchResult> OptimalLatticeSearch(
    std::shared_ptr<const Dataset> original, const HierarchySet& hierarchies,
    const OptimalSearchConfig& config, const LossFn& loss = ProxyLoss,
    RunContext* run = nullptr, OptimalLatticeCheckpoint* checkpoint = nullptr);

}  // namespace mdc

#endif  // MDC_ANONYMIZE_OPTIMAL_LATTICE_H_
