#include "anonymize/equivalence.h"

#include <map>
#include <string>

namespace mdc {

EquivalencePartition EquivalencePartition::FromAnonymization(
    const Anonymization& anonymization) {
  return FromColumns(anonymization.release, anonymization.qi_columns);
}

EquivalencePartition EquivalencePartition::FromColumns(
    const Dataset& dataset, const std::vector<size_t>& columns) {
  // std::map keys give deterministic (sorted) class order.
  std::map<std::vector<std::string>, std::vector<size_t>> groups;
  for (size_t r = 0; r < dataset.row_count(); ++r) {
    std::vector<std::string> key;
    key.reserve(columns.size());
    for (size_t c : columns) key.push_back(dataset.cell(r, c).ToString());
    groups[std::move(key)].push_back(r);
  }
  EquivalencePartition partition;
  partition.class_of_row_.assign(dataset.row_count(), 0);
  partition.classes_.reserve(groups.size());
  for (auto& [key, members] : groups) {
    size_t class_id = partition.classes_.size();
    for (size_t row : members) partition.class_of_row_[row] = class_id;
    partition.classes_.push_back(std::move(members));
  }
  return partition;
}

const std::vector<size_t>& EquivalencePartition::class_members(
    size_t class_id) const {
  MDC_CHECK_LT(class_id, classes_.size());
  return classes_[class_id];
}

size_t EquivalencePartition::ClassOfRow(size_t row) const {
  MDC_CHECK_LT(row, class_of_row_.size());
  return class_of_row_[row];
}

size_t EquivalencePartition::ClassSize(size_t class_id) const {
  MDC_CHECK_LT(class_id, classes_.size());
  return classes_[class_id].size();
}

std::vector<double> EquivalencePartition::ClassSizePerRow() const {
  std::vector<double> sizes(class_of_row_.size(), 0.0);
  for (size_t r = 0; r < class_of_row_.size(); ++r) {
    sizes[r] = static_cast<double>(classes_[class_of_row_[r]].size());
  }
  return sizes;
}

size_t EquivalencePartition::MinClassSize() const {
  size_t min_size = 0;
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (i == 0 || classes_[i].size() < min_size) min_size = classes_[i].size();
  }
  return min_size;
}

size_t EquivalencePartition::MinClassSizeExempting(
    const std::vector<bool>& exempt) const {
  MDC_CHECK_EQ(exempt.size(), class_of_row_.size());
  size_t min_size = 0;
  bool found = false;
  for (const std::vector<size_t>& members : classes_) {
    bool counts = false;
    for (size_t row : members) {
      if (!exempt[row]) {
        counts = true;
        break;
      }
    }
    if (!counts) continue;
    if (!found || members.size() < min_size) {
      min_size = members.size();
      found = true;
    }
  }
  return found ? min_size : 0;
}

}  // namespace mdc
