#include "anonymize/equivalence.h"

#include <algorithm>
#include <bit>
#include <map>
#include <string>

#include "common/metrics.h"

namespace mdc {
namespace {

// Reused per-thread scratch for FromCodeColumns. A lattice search calls
// the grouping once or twice per node from a fixed set of pool threads,
// so the hash table and per-row arrays are allocated once per thread and
// then recycled; generation tags make table "clearing" free.
struct GroupScratch {
  std::vector<uint64_t> keys;         // packed key per row
  std::vector<uint32_t> slot_of_row;  // first-seen slot per row
  // Open-addressing table: key/slot valid iff gen matches the current
  // generation. Linear probing; capacity is a power of two ≥ 2·rows.
  std::vector<uint64_t> table_key;
  std::vector<uint32_t> table_slot;
  std::vector<uint32_t> table_gen;
  uint32_t gen = 0;
  std::vector<uint32_t> counts;      // rows per slot
  std::vector<uint64_t> slot_keys;   // key of each slot, first-seen order
};

// Avalanching multiply-xorshift so consecutive packed keys don't cluster
// in the linear-probe table. Collisions are only a speed concern: slot
// identity is decided by full-key comparison.
uint64_t MixKey(uint64_t key) {
  key *= 0x9e3779b97f4a7c15ull;
  key ^= key >> 32;
  return key;
}

// Groups rows by the packed key per row in `scratch.keys`, leaving the
// per-slot counts, per-row slots, and first-seen slot keys in `scratch`.
void GroupByKeys(size_t row_count, GroupScratch& scratch) {
  size_t capacity = 16;
  while (capacity < row_count * 2) capacity <<= 1;
  if (scratch.table_key.size() != capacity) {
    scratch.table_key.assign(capacity, 0);
    scratch.table_slot.assign(capacity, 0);
    scratch.table_gen.assign(capacity, 0);
    scratch.gen = 0;
  }
  if (++scratch.gen == 0) {
    // Generation counter wrapped: stale tags could alias. Reset once per
    // 2^32 builds.
    std::fill(scratch.table_gen.begin(), scratch.table_gen.end(), 0u);
    scratch.gen = 1;
  }
  scratch.slot_of_row.resize(row_count);
  scratch.counts.clear();
  scratch.slot_keys.clear();
  const uint64_t mask = capacity - 1;
  for (size_t row = 0; row < row_count; ++row) {
    const uint64_t key = scratch.keys[row];
    uint64_t h = MixKey(key) & mask;
    uint32_t slot;
    for (;;) {
      if (scratch.table_gen[h] != scratch.gen) {
        scratch.table_gen[h] = scratch.gen;
        scratch.table_key[h] = key;
        slot = static_cast<uint32_t>(scratch.slot_keys.size());
        scratch.table_slot[h] = slot;
        scratch.slot_keys.push_back(key);
        scratch.counts.push_back(0);
        break;
      }
      if (scratch.table_key[h] == key) {
        slot = scratch.table_slot[h];
        break;
      }
      h = (h + 1) & mask;
    }
    scratch.slot_of_row[row] = slot;
    scratch.counts[slot]++;
  }
}

}  // namespace

EquivalencePartition EquivalencePartition::FromAnonymization(
    const Anonymization& anonymization) {
  return FromColumns(anonymization.release, anonymization.qi_columns);
}

EquivalencePartition EquivalencePartition::FromColumns(
    const Dataset& dataset, const std::vector<size_t>& columns) {
  // std::map keys give deterministic (sorted) class order. The scratch key
  // is reused across rows: groups that already exist cost no allocation.
  std::map<std::vector<std::string>, std::vector<size_t>> groups;
  std::vector<std::string> key;
  key.reserve(columns.size());
  for (size_t r = 0; r < dataset.row_count(); ++r) {
    key.clear();
    for (size_t c : columns) key.push_back(dataset.cell(r, c).ToString());
    auto it = groups.find(key);
    if (it == groups.end()) it = groups.emplace(key, std::vector<size_t>{}).first;
    it->second.push_back(r);
  }
  EquivalencePartition partition;
  partition.class_of_row_.assign(dataset.row_count(), 0);
  partition.members_.reserve(dataset.row_count());
  partition.offsets_.reserve(groups.size() + 1);
  partition.offsets_.push_back(0);
  for (auto& [group_key, members] : groups) {
    size_t class_id = partition.offsets_.size() - 1;
    for (size_t row : members) partition.class_of_row_[row] = class_id;
    partition.members_.insert(partition.members_.end(), members.begin(),
                              members.end());
    partition.offsets_.push_back(partition.members_.size());
  }
  return partition;
}

EquivalencePartition EquivalencePartition::FromCodeColumns(
    size_t row_count, const std::vector<std::vector<uint32_t>>& code_columns,
    const std::vector<uint32_t>& cardinalities) {
  MDC_CHECK_EQ(code_columns.size(), cardinalities.size());
  const size_t m = code_columns.size();
  EquivalencePartition partition;
  if (m == 0) {
    // Empty key: every row shares one class (matches FromColumns).
    partition.class_of_row_.assign(row_count, 0);
    if (row_count > 0) {
      partition.members_.resize(row_count);
      for (size_t r = 0; r < row_count; ++r) partition.members_[r] = r;
      partition.offsets_ = {0, row_count};
    }
    return partition;
  }
  for (const std::vector<uint32_t>& codes : code_columns) {
    MDC_CHECK_EQ(codes.size(), row_count);
  }

  // Bits per column; shifts place column 0 most significant so numeric key
  // order equals lexicographic tuple order.
  int total_bits = 0;
  std::vector<int> bits(m);
  for (size_t pos = 0; pos < m; ++pos) {
    bits[pos] = cardinalities[pos] > 1
                    ? std::bit_width(cardinalities[pos] - 1u)
                    : 0;
    total_bits += bits[pos];
  }
  std::vector<int> shifts(m, 0);
  int shift = total_bits;
  for (size_t pos = 0; pos < m; ++pos) {
    shift -= bits[pos];
    shifts[pos] = shift;
  }

  if (total_bits <= 64) {
    static thread_local GroupScratch scratch;
    // Column-outer key packing: each pass is a vertical shift-or the
    // compiler vectorizes, unlike a row-outer loop over m columns.
    scratch.keys.assign(row_count, 0);
    for (size_t pos = 0; pos < m; ++pos) {
      const uint32_t* codes = code_columns[pos].data();
      const int s = shifts[pos];
      uint64_t* keys = scratch.keys.data();
      for (size_t r = 0; r < row_count; ++r) {
        keys[r] |= static_cast<uint64_t>(codes[r]) << s;
      }
    }
    GroupByKeys(row_count, scratch);

    // Canonical class order is ascending packed key == lexicographic
    // tuple order. Sort the (few) distinct keys, not the rows.
    const size_t class_count = scratch.slot_keys.size();
    std::vector<uint32_t> order(class_count);
    for (uint32_t i = 0; i < class_count; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&scratch](uint32_t a, uint32_t b) {
                return scratch.slot_keys[a] < scratch.slot_keys[b];
              });
    std::vector<uint32_t> class_of_slot(class_count);
    for (uint32_t i = 0; i < class_count; ++i) class_of_slot[order[i]] = i;

    partition.offsets_.resize(class_count + 1);
    partition.offsets_[0] = 0;
    for (uint32_t i = 0; i < class_count; ++i) {
      partition.offsets_[i + 1] =
          partition.offsets_[i] + scratch.counts[order[i]];
    }
    std::vector<size_t> cursor(partition.offsets_.begin(),
                               partition.offsets_.end() - 1);
    partition.members_.resize(row_count);
    partition.class_of_row_.resize(row_count);
    for (size_t r = 0; r < row_count; ++r) {
      const uint32_t class_id = class_of_slot[scratch.slot_of_row[r]];
      partition.class_of_row_[r] = class_id;
      partition.members_[cursor[class_id]++] = r;
    }
  } else {
    // Very wide tuples: group on the code vectors themselves. std::map
    // keeps the canonical order directly; this path is cold.
    std::map<std::vector<uint32_t>, std::vector<size_t>> groups;
    std::vector<uint32_t> key(m);
    for (size_t row = 0; row < row_count; ++row) {
      for (size_t pos = 0; pos < m; ++pos) key[pos] = code_columns[pos][row];
      groups[key].push_back(row);
    }
    partition.class_of_row_.assign(row_count, 0);
    partition.members_.reserve(row_count);
    partition.offsets_.reserve(groups.size() + 1);
    partition.offsets_.push_back(0);
    for (auto& [group_key, members] : groups) {
      size_t class_id = partition.offsets_.size() - 1;
      for (size_t row : members) partition.class_of_row_[row] = class_id;
      partition.members_.insert(partition.members_.end(), members.begin(),
                                members.end());
      partition.offsets_.push_back(partition.members_.size());
    }
  }

  MDC_METRIC_INC("partition.builds");
  MDC_METRIC_ADD("partition.rows", row_count);
  MDC_METRIC_ADD("partition.classes", partition.class_count());
  return partition;
}

ClassSpan EquivalencePartition::class_members(size_t class_id) const {
  MDC_CHECK_LT(class_id, class_count());
  return ClassSpan(members_.data() + offsets_[class_id],
                   offsets_[class_id + 1] - offsets_[class_id]);
}

size_t EquivalencePartition::ClassOfRow(size_t row) const {
  MDC_CHECK_LT(row, class_of_row_.size());
  return class_of_row_[row];
}

size_t EquivalencePartition::ClassSize(size_t class_id) const {
  MDC_CHECK_LT(class_id, class_count());
  return offsets_[class_id + 1] - offsets_[class_id];
}

std::vector<double> EquivalencePartition::ClassSizePerRow() const {
  std::vector<double> sizes(class_of_row_.size(), 0.0);
  for (size_t r = 0; r < class_of_row_.size(); ++r) {
    const size_t c = class_of_row_[r];
    sizes[r] = static_cast<double>(offsets_[c + 1] - offsets_[c]);
  }
  return sizes;
}

size_t EquivalencePartition::MinClassSize() const {
  size_t min_size = 0;
  for (size_t i = 0; i < class_count(); ++i) {
    const size_t size = offsets_[i + 1] - offsets_[i];
    if (i == 0 || size < min_size) min_size = size;
  }
  return min_size;
}

size_t EquivalencePartition::MinClassSizeExempting(
    const std::vector<bool>& exempt) const {
  MDC_CHECK_EQ(exempt.size(), class_of_row_.size());
  size_t min_size = 0;
  bool found = false;
  for (ClassSpan members : classes()) {
    bool counts = false;
    for (size_t row : members) {
      if (!exempt[row]) {
        counts = true;
        break;
      }
    }
    if (!counts) continue;
    if (!found || members.size() < min_size) {
      min_size = members.size();
      found = true;
    }
  }
  return found ? min_size : 0;
}

}  // namespace mdc
