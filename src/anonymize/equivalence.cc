#include "anonymize/equivalence.h"

#include <algorithm>
#include <bit>
#include <map>
#include <string>
#include <unordered_map>

#include "common/metrics.h"

namespace mdc {
namespace {

// Hash-grouped classes before canonical ordering: `slots` holds the row
// indices of each class in first-seen order; `order[i]` is the slot of the
// class that sorts i-th in canonical (ascending key) order.
struct GroupedClasses {
  std::vector<std::vector<size_t>> slots;
  std::vector<size_t> order;
};

// Grouping over keys packed into one integer (uint64_t or
// unsigned __int128); ascending packed keys == lexicographic code tuples
// because columns occupy disjoint, order-preserving bit ranges.
template <typename Key>
GroupedClasses GroupPacked(
    size_t row_count, const std::vector<std::vector<uint32_t>>& code_columns,
    const std::vector<int>& shifts) {
  std::unordered_map<uint64_t, size_t> slot_of_key;
  slot_of_key.reserve(row_count);
  std::vector<Key> keys;            // Key of each slot, in first-seen order.
  std::vector<std::vector<size_t>> slots;
  const size_t m = code_columns.size();
  for (size_t row = 0; row < row_count; ++row) {
    Key key = 0;
    for (size_t pos = 0; pos < m; ++pos) {
      key |= static_cast<Key>(code_columns[pos][row]) << shifts[pos];
    }
    // uint64_t hash of the key: the low word collides only when the high
    // word differs, which the equality probe below disambiguates.
    uint64_t hashed = static_cast<uint64_t>(key);
    auto [it, inserted] = slot_of_key.try_emplace(hashed, slots.size());
    size_t slot = it->second;
    if (!inserted && keys[slot] != key) {
      // Low-word collision between distinct wide keys: fall back to a
      // linear probe over slots with the same low word (vanishingly rare).
      slot = slots.size();
      for (size_t s = 0; s < keys.size(); ++s) {
        if (keys[s] == key) {
          slot = s;
          break;
        }
      }
      if (slot == slots.size()) inserted = true;
    }
    if (inserted) {
      if (slot == slots.size()) {
        keys.push_back(key);
        slots.emplace_back();
      }
    }
    slots[slot].push_back(row);
  }
  (void)row_count;
  std::vector<size_t> order(slots.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
  return GroupedClasses{std::move(slots), std::move(order)};
}

}  // namespace

EquivalencePartition EquivalencePartition::FromAnonymization(
    const Anonymization& anonymization) {
  return FromColumns(anonymization.release, anonymization.qi_columns);
}

EquivalencePartition EquivalencePartition::FromColumns(
    const Dataset& dataset, const std::vector<size_t>& columns) {
  // std::map keys give deterministic (sorted) class order. The scratch key
  // is reused across rows: groups that already exist cost no allocation.
  std::map<std::vector<std::string>, std::vector<size_t>> groups;
  std::vector<std::string> key;
  key.reserve(columns.size());
  for (size_t r = 0; r < dataset.row_count(); ++r) {
    key.clear();
    for (size_t c : columns) key.push_back(dataset.cell(r, c).ToString());
    auto it = groups.find(key);
    if (it == groups.end()) it = groups.emplace(key, std::vector<size_t>{}).first;
    it->second.push_back(r);
  }
  EquivalencePartition partition;
  partition.class_of_row_.assign(dataset.row_count(), 0);
  partition.classes_.reserve(groups.size());
  for (auto& [group_key, members] : groups) {
    size_t class_id = partition.classes_.size();
    for (size_t row : members) partition.class_of_row_[row] = class_id;
    partition.classes_.push_back(std::move(members));
  }
  return partition;
}

EquivalencePartition EquivalencePartition::FromCodeColumns(
    size_t row_count, const std::vector<std::vector<uint32_t>>& code_columns,
    const std::vector<uint32_t>& cardinalities) {
  MDC_CHECK_EQ(code_columns.size(), cardinalities.size());
  const size_t m = code_columns.size();
  if (m == 0) {
    // Empty key: every row shares one class (matches FromColumns).
    EquivalencePartition partition;
    partition.class_of_row_.assign(row_count, 0);
    if (row_count > 0) {
      std::vector<size_t> all(row_count);
      for (size_t r = 0; r < row_count; ++r) all[r] = r;
      partition.classes_.push_back(std::move(all));
    }
    return partition;
  }
  for (const std::vector<uint32_t>& codes : code_columns) {
    MDC_CHECK_EQ(codes.size(), row_count);
  }

  // Bits per column; shifts place column 0 most significant so numeric key
  // order equals lexicographic tuple order.
  int total_bits = 0;
  std::vector<int> bits(m);
  for (size_t pos = 0; pos < m; ++pos) {
    bits[pos] = cardinalities[pos] > 1
                    ? std::bit_width(cardinalities[pos] - 1u)
                    : 0;
    total_bits += bits[pos];
  }
  std::vector<int> shifts(m, 0);
  int shift = total_bits;
  for (size_t pos = 0; pos < m; ++pos) {
    shift -= bits[pos];
    shifts[pos] = shift;
  }
  GroupedClasses grouped;
  if (total_bits <= 64) {
    grouped = GroupPacked<uint64_t>(row_count, code_columns, shifts);
  } else if (total_bits <= 128) {
    grouped = GroupPacked<unsigned __int128>(row_count, code_columns, shifts);
  } else {
    // Very wide tuples: group on the code vectors themselves. std::map
    // keeps the canonical order directly; this path is cold.
    std::map<std::vector<uint32_t>, std::vector<size_t>> groups;
    std::vector<uint32_t> key(m);
    for (size_t row = 0; row < row_count; ++row) {
      for (size_t pos = 0; pos < m; ++pos) key[pos] = code_columns[pos][row];
      groups[key].push_back(row);
    }
    grouped.slots.reserve(groups.size());
    for (auto& [group_key, members] : groups) {
      grouped.order.push_back(grouped.slots.size());
      grouped.slots.push_back(std::move(members));
    }
  }

  EquivalencePartition partition;
  partition.class_of_row_.assign(row_count, 0);
  partition.classes_.reserve(grouped.slots.size());
  for (size_t slot : grouped.order) {
    size_t class_id = partition.classes_.size();
    for (size_t row : grouped.slots[slot]) {
      partition.class_of_row_[row] = class_id;
    }
    partition.classes_.push_back(std::move(grouped.slots[slot]));
  }
  MDC_METRIC_INC("partition.builds");
  MDC_METRIC_ADD("partition.rows", row_count);
  MDC_METRIC_ADD("partition.classes", partition.classes_.size());
  return partition;
}

const std::vector<size_t>& EquivalencePartition::class_members(
    size_t class_id) const {
  MDC_CHECK_LT(class_id, classes_.size());
  return classes_[class_id];
}

size_t EquivalencePartition::ClassOfRow(size_t row) const {
  MDC_CHECK_LT(row, class_of_row_.size());
  return class_of_row_[row];
}

size_t EquivalencePartition::ClassSize(size_t class_id) const {
  MDC_CHECK_LT(class_id, classes_.size());
  return classes_[class_id].size();
}

std::vector<double> EquivalencePartition::ClassSizePerRow() const {
  std::vector<double> sizes(class_of_row_.size(), 0.0);
  for (size_t r = 0; r < class_of_row_.size(); ++r) {
    sizes[r] = static_cast<double>(classes_[class_of_row_[r]].size());
  }
  return sizes;
}

size_t EquivalencePartition::MinClassSize() const {
  size_t min_size = 0;
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (i == 0 || classes_[i].size() < min_size) min_size = classes_[i].size();
  }
  return min_size;
}

size_t EquivalencePartition::MinClassSizeExempting(
    const std::vector<bool>& exempt) const {
  MDC_CHECK_EQ(exempt.size(), class_of_row_.size());
  size_t min_size = 0;
  bool found = false;
  for (const std::vector<size_t>& members : classes_) {
    bool counts = false;
    for (size_t row : members) {
      if (!exempt[row]) {
        counts = true;
        break;
      }
    }
    if (!counts) continue;
    if (!found || members.size() < min_size) {
      min_size = members.size();
      found = true;
    }
  }
  return found ? min_size : 0;
}

}  // namespace mdc
