#include "anonymize/optimal_lattice.h"

#include <unordered_map>

#include "common/failpoint.h"

namespace mdc {
namespace {

bool SatisfiesAll(const OptimalSearchConfig& config,
                  const NodeEvaluation& evaluation) {
  if (!evaluation.feasible) return false;
  if (config.extra_predicate &&
      !config.extra_predicate(evaluation.anonymization,
                              evaluation.partition)) {
    return false;
  }
  return true;
}

}  // namespace

StatusOr<OptimalSearchResult> OptimalLatticeSearch(
    std::shared_ptr<const Dataset> original, const HierarchySet& hierarchies,
    const OptimalSearchConfig& config, const LossFn& loss, RunContext* run) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (original == nullptr) {
    return Status::InvalidArgument("null original dataset");
  }
  MDC_RETURN_IF_ERROR(hierarchies.CoversQuasiIdentifiers(original->schema()));
  MDC_ASSIGN_OR_RETURN(Lattice lattice, Lattice::ForHierarchies(hierarchies));

  OptimalSearchResult result;
  result.lattice_size = lattice.NodeCount();

  // satisfying[index] records nodes known to satisfy (directly evaluated or
  // implied by monotonicity from a predecessor).
  std::vector<char> satisfying(result.lattice_size, 0);
  RunContext::ChargeMemory(run, satisfying.size() * sizeof(char));

  bool truncated = false;
  for (const LatticeNode& node : lattice.AllNodesByHeight()) {
    size_t index = lattice.IndexOf(node);
    bool implied = false;
    for (const LatticeNode& pred : lattice.Predecessors(node)) {
      if (satisfying[lattice.IndexOf(pred)] != 0) {
        implied = true;
        break;
      }
    }
    if (implied) {
      satisfying[index] = 1;
      continue;  // Not minimal; skip evaluation entirely.
    }
    MDC_FAILPOINT("optimal.node");
    auto evaluation_or = EvaluateNode(original, hierarchies, node, config.k,
                                      config.suppression, "optimal", run);
    if (!evaluation_or.ok()) {
      // Degrade to the minimal nodes already found; each is sound. With
      // nothing found yet, the budget error (or real error) propagates.
      if (evaluation_or.status().IsBudgetError() &&
          !result.minimal_nodes.empty()) {
        truncated = true;
        break;
      }
      return evaluation_or.status();
    }
    NodeEvaluation evaluation = std::move(evaluation_or).value();
    ++result.nodes_evaluated;
    if (!SatisfiesAll(config, evaluation)) continue;

    satisfying[index] = 1;
    result.minimal_nodes.push_back(node);
    double node_loss = loss(evaluation.anonymization, evaluation.partition);
    if (result.minimal_nodes.size() == 1 || node_loss < result.best_loss) {
      result.best_loss = node_loss;
      result.best_node = node;
      result.best = std::move(evaluation);
    }
  }

  if (result.minimal_nodes.empty()) {
    return Status::Infeasible(
        "optimal lattice search: no node satisfies the privacy constraints");
  }

  result.run_stats = RunContext::Stats(run, truncated);

  if (config.verify_monotonicity && !truncated) {
    for (const LatticeNode& node : result.minimal_nodes) {
      for (const LatticeNode& succ : lattice.Successors(node)) {
        MDC_ASSIGN_OR_RETURN(
            NodeEvaluation evaluation,
            EvaluateNode(original, hierarchies, succ, config.k,
                         config.suppression, "optimal"));
        if (!SatisfiesAll(config, evaluation)) {
          return Status::FailedPrecondition(
              "privacy predicate is not monotone: " +
              Lattice::ToString(node) + " satisfies but its successor " +
              Lattice::ToString(succ) + " does not");
        }
      }
    }
  }
  return result;
}

}  // namespace mdc
