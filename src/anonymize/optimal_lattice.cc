#include "anonymize/optimal_lattice.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "anonymize/encoded_eval.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace mdc {
namespace {

bool SatisfiesAll(const OptimalSearchConfig& config,
                  const NodeEvaluation& evaluation) {
  if (!evaluation.feasible) return false;
  if (config.extra_predicate &&
      !config.extra_predicate(evaluation.anonymization,
                              evaluation.partition)) {
    return false;
  }
  return true;
}

constexpr uint32_t kOptimalPayloadVersion = 1;

}  // namespace

StatusOr<std::string> OptimalLatticeCheckpoint::SaveCheckpoint() const {
  if (!captured) {
    return Status::FailedPrecondition("optimal checkpoint: no state");
  }
  SnapshotWriter writer(SnapshotKind::kOptimalLattice, kOptimalPayloadVersion);
  writer.WriteU64(next_index);
  writer.WriteString(satisfying);
  WriteLatticeNodeVec(writer, minimal_nodes);
  WriteLatticeNode(writer, best_node);
  writer.WriteDouble(best_loss);
  writer.WriteU64(nodes_evaluated);
  return writer.Finish();
}

Status OptimalLatticeCheckpoint::ResumeFrom(std::string_view bytes) {
  MDC_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      SnapshotReader::Open(bytes, SnapshotKind::kOptimalLattice,
                           kOptimalPayloadVersion));
  OptimalLatticeCheckpoint loaded;
  MDC_ASSIGN_OR_RETURN(loaded.next_index, reader.ReadU64());
  MDC_ASSIGN_OR_RETURN(loaded.satisfying, reader.ReadString());
  MDC_ASSIGN_OR_RETURN(loaded.minimal_nodes, ReadLatticeNodeVec(reader));
  MDC_ASSIGN_OR_RETURN(loaded.best_node, ReadLatticeNode(reader));
  MDC_ASSIGN_OR_RETURN(loaded.best_loss, reader.ReadDouble());
  MDC_ASSIGN_OR_RETURN(loaded.nodes_evaluated, reader.ReadU64());
  MDC_RETURN_IF_ERROR(reader.ExpectEnd());
  loaded.captured = true;
  *this = std::move(loaded);
  return Status::Ok();
}

StatusOr<OptimalSearchResult> OptimalLatticeSearch(
    std::shared_ptr<const Dataset> original, const HierarchySet& hierarchies,
    const OptimalSearchConfig& config, const LossFn& loss, RunContext* run,
    OptimalLatticeCheckpoint* checkpoint) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (original == nullptr) {
    return Status::InvalidArgument("null original dataset");
  }
  TRACE_SPAN("optimal/search");
  MDC_METRIC_INC("search.optimal.runs");
  MDC_RETURN_IF_ERROR(hierarchies.CoversQuasiIdentifiers(original->schema()));
  MDC_ASSIGN_OR_RETURN(Lattice lattice, Lattice::ForHierarchies(hierarchies));
  MDC_ASSIGN_OR_RETURN(EncodedNodeEvaluator evaluator,
                       EncodedNodeEvaluator::Build(original, hierarchies, run,
                                                   config.encoded));
  const int threads = ThreadPool::ResolveThreadCount(config.threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  OptimalSearchResult result;
  result.lattice_size = lattice.NodeCount();

  // satisfying[index] records nodes known to satisfy (directly evaluated or
  // implied by monotonicity from a predecessor).
  std::vector<char> satisfying(result.lattice_size, 0);
  RunContext::ChargeMemory(run, satisfying.size() * sizeof(char));

  const std::vector<LatticeNode> all_nodes = lattice.AllNodesByHeight();
  size_t start_index = 0;
  if (checkpoint != nullptr && checkpoint->captured) {
    if (checkpoint->satisfying.size() != satisfying.size() ||
        checkpoint->next_index > all_nodes.size()) {
      return Status::InvalidArgument(
          "optimal checkpoint: does not match this lattice");
    }
    std::copy(checkpoint->satisfying.begin(), checkpoint->satisfying.end(),
              satisfying.begin());
    start_index = static_cast<size_t>(checkpoint->next_index);
    result.minimal_nodes = checkpoint->minimal_nodes;
    result.nodes_evaluated = static_cast<size_t>(checkpoint->nodes_evaluated);
    if (!result.minimal_nodes.empty()) {
      // Re-derive the best evaluation: EvaluateNode is deterministic, so
      // this reproduces exactly what the interrupted run held in memory.
      result.best_node = checkpoint->best_node;
      result.best_loss = checkpoint->best_loss;
      MDC_ASSIGN_OR_RETURN(
          result.best,
          EvaluateNode(original, hierarchies, result.best_node, config.k,
                       config.suppression, "optimal"));
    }
  }

  // Captures the sweep position for resume; `next_index` is the node the
  // interrupted run did not finish evaluating.
  auto capture = [&](size_t next_index) {
    if (checkpoint == nullptr) return;
    checkpoint->next_index = next_index;
    checkpoint->satisfying.assign(satisfying.begin(), satisfying.end());
    checkpoint->minimal_nodes = result.minimal_nodes;
    checkpoint->best_node = result.best_node;
    checkpoint->best_loss = result.best_loss;
    checkpoint->nodes_evaluated = result.nodes_evaluated;
    checkpoint->captured = true;
  };

  // Commits one evaluated node in deterministic sweep order: feasible nodes
  // are materialized (release + loss) and recorded as minimal.
  auto commit = [&](const LatticeNode& node, size_t index,
                    const EncodedNodeEvaluator::Evaluation& evaluation)
      -> Status {
    ++result.nodes_evaluated;
    MDC_METRIC_INC("search.optimal.nodes_evaluated");
    if (!evaluation.feasible) return Status::Ok();
    MDC_ASSIGN_OR_RETURN(NodeEvaluation full,
                         evaluator.Materialize(node, evaluation, "optimal"));
    if (config.extra_predicate &&
        !config.extra_predicate(full.anonymization, full.partition)) {
      return Status::Ok();
    }
    MDC_METRIC_INC("search.optimal.satisfying_nodes");
    satisfying[index] = 1;
    result.minimal_nodes.push_back(node);
    double node_loss = loss(full.anonymization, full.partition);
    if (result.minimal_nodes.size() == 1 || node_loss < result.best_loss) {
      result.best_loss = node_loss;
      result.best_node = node;
      result.best = std::move(full);
    }
    return Status::Ok();
  };

  bool truncated = false;
  if (!pool.has_value()) {
    for (size_t node_index = start_index; node_index < all_nodes.size();
         ++node_index) {
      const LatticeNode& node = all_nodes[node_index];
      size_t index = lattice.IndexOf(node);
      bool implied = false;
      for (const LatticeNode& pred : lattice.Predecessors(node)) {
        if (satisfying[lattice.IndexOf(pred)] != 0) {
          implied = true;
          break;
        }
      }
      if (implied) {
        satisfying[index] = 1;
        MDC_METRIC_INC("search.optimal.implied_pruned");
        continue;  // Not minimal; skip evaluation entirely.
      }
      MDC_FAILPOINT("optimal.node");
      auto evaluation_or =
          evaluator.Evaluate(node, config.k, config.suppression, run);
      if (!evaluation_or.ok()) {
        if (evaluation_or.status().IsBudgetError()) {
          capture(node_index);
          // Degrade to the minimal nodes already found; each is sound. With
          // nothing found yet, the budget error propagates.
          if (!result.minimal_nodes.empty()) {
            truncated = true;
            break;
          }
        }
        return evaluation_or.status();
      }
      MDC_RETURN_IF_ERROR(
          commit(node, index, std::move(evaluation_or).value()));
    }
  } else {
    // Wave-parallel sweep. Monotonicity pruning only consults nodes one
    // height below, so nodes of one height are independent: a wave admits
    // nodes of a single height, replaying the failpoint + budget sequence
    // per node in sweep order BEFORE dispatch (a step budget expires at
    // exactly the node a serial sweep would stop at), then evaluates the
    // wave concurrently and commits results in sweep order.
    const size_t wave = static_cast<size_t>(pool->thread_count()) * 4;
    size_t node_index = start_index;
    while (node_index < all_nodes.size() && !truncated) {
      const int height = lattice.Height(all_nodes[node_index]);
      Status admit_error;  // First failpoint/budget error, at `node_index`.
      std::vector<LatticeNode> batch;
      std::vector<size_t> batch_lattice_index;
      std::vector<size_t> batch_sweep_index;
      while (node_index < all_nodes.size() && batch.size() < wave &&
             lattice.Height(all_nodes[node_index]) == height) {
        const LatticeNode& node = all_nodes[node_index];
        size_t index = lattice.IndexOf(node);
        bool implied = false;
        for (const LatticeNode& pred : lattice.Predecessors(node)) {
          if (satisfying[lattice.IndexOf(pred)] != 0) {
            implied = true;
            break;
          }
        }
        if (implied) {
          satisfying[index] = 1;
          MDC_METRIC_INC("search.optimal.implied_pruned");
          ++node_index;
          continue;
        }
        admit_error = MDC_FAILPOINT_STATUS("optimal.node");
        if (admit_error.ok()) admit_error = RunContext::Check(run);
        if (!admit_error.ok()) break;
        batch.push_back(node);
        batch_lattice_index.push_back(index);
        batch_sweep_index.push_back(node_index);
        ++node_index;
      }
      auto results =
          EvaluateBatch(evaluator, batch, config.k, config.suppression, *pool);
      for (size_t j = 0; j < batch.size() && !truncated; ++j) {
        StatusOr<EncodedNodeEvaluator::Evaluation>& eval_or = *results[j];
        if (!eval_or.ok()) {
          // Workers run without `run`, but injected faults may still carry
          // a budget code; mirror the serial degrade path.
          if (eval_or.status().IsBudgetError()) {
            capture(batch_sweep_index[j]);
            if (!result.minimal_nodes.empty()) {
              truncated = true;
              continue;
            }
          }
          return eval_or.status();
        }
        MDC_RETURN_IF_ERROR(commit(batch[j], batch_lattice_index[j],
                                   std::move(eval_or).value()));
      }
      if (truncated) break;
      if (!admit_error.ok()) {
        if (admit_error.IsBudgetError()) {
          capture(node_index);
          if (!result.minimal_nodes.empty()) {
            truncated = true;
            break;
          }
        }
        return admit_error;
      }
    }
  }

  if (result.minimal_nodes.empty()) {
    return Status::Infeasible(
        "optimal lattice search: no node satisfies the privacy constraints");
  }

  result.run_stats = RunContext::Stats(run, truncated);

  if (config.verify_monotonicity && !truncated) {
    for (const LatticeNode& node : result.minimal_nodes) {
      for (const LatticeNode& succ : lattice.Successors(node)) {
        MDC_ASSIGN_OR_RETURN(
            NodeEvaluation evaluation,
            EvaluateNode(original, hierarchies, succ, config.k,
                         config.suppression, "optimal"));
        if (!SatisfiesAll(config, evaluation)) {
          return Status::FailedPrecondition(
              "privacy predicate is not monotone: " +
              Lattice::ToString(node) + " satisfies but its successor " +
              Lattice::ToString(succ) + " does not");
        }
      }
    }
  }
  return result;
}

}  // namespace mdc
