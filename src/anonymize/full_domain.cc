#include "anonymize/full_domain.h"

#include <numeric>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace mdc {

StatusOr<NodeEvaluation> EvaluateNode(std::shared_ptr<const Dataset> original,
                                      const HierarchySet& hierarchies,
                                      const LatticeNode& node, int k,
                                      const SuppressionBudget& budget,
                                      std::string algorithm,
                                      RunContext* run) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  MDC_RETURN_IF_ERROR(RunContext::Check(run));
  MDC_FAILPOINT("full_domain.evaluate");
  MDC_METRIC_INC("eval.nodes_legacy");
  MDC_ASSIGN_OR_RETURN(GeneralizationScheme scheme,
                       GeneralizationScheme::Create(hierarchies, node));
  MDC_ASSIGN_OR_RETURN(
      Anonymization anonymization,
      Generalizer::Apply(std::move(original), scheme, std::move(algorithm)));

  EquivalencePartition partition =
      EquivalencePartition::FromAnonymization(anonymization);

  // Rows of classes smaller than k are suppression candidates.
  std::vector<size_t> to_suppress;
  for (ClassSpan members : partition.classes()) {
    if (members.size() < static_cast<size_t>(k)) {
      to_suppress.insert(to_suppress.end(), members.begin(), members.end());
    }
  }

  NodeEvaluation evaluation{std::move(anonymization), std::move(partition), 0,
                            false};
  const size_t max_rows =
      budget.MaxRows(evaluation.anonymization.row_count());
  if (to_suppress.size() > max_rows) {
    // Infeasible at this node; report without suppressing so callers can
    // still inspect the raw partition.
    return evaluation;
  }
  if (!to_suppress.empty()) {
    MDC_RETURN_IF_ERROR(
        Generalizer::SuppressRows(evaluation.anonymization, to_suppress));
    evaluation.partition =
        EquivalencePartition::FromAnonymization(evaluation.anonymization);
    evaluation.suppressed_count = to_suppress.size();
  }
  size_t min_size = evaluation.partition.MinClassSizeExempting(
      evaluation.anonymization.suppressed);
  // min_size == 0 means every row is suppressed; that only satisfies k if
  // nothing remains to protect.
  evaluation.feasible =
      min_size >= static_cast<size_t>(k) ||
      evaluation.suppressed_count == evaluation.anonymization.row_count();
  return evaluation;
}

void WriteLatticeNode(SnapshotWriter& writer, const LatticeNode& node) {
  writer.WriteI32Vec(node);
}

StatusOr<LatticeNode> ReadLatticeNode(SnapshotReader& reader) {
  return reader.ReadI32Vec();
}

void WriteLatticeNodeVec(SnapshotWriter& writer,
                         const std::vector<LatticeNode>& nodes) {
  writer.WriteU64(nodes.size());
  for (const LatticeNode& node : nodes) WriteLatticeNode(writer, node);
}

StatusOr<std::vector<LatticeNode>> ReadLatticeNodeVec(SnapshotReader& reader) {
  MDC_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  // Each serialized node costs at least a u64 length prefix, so a count
  // beyond the remaining bytes is corrupt — reject before reserving.
  if (count > reader.remaining() / sizeof(uint64_t)) {
    return Status::InvalidArgument("snapshot: node vector count exceeds data");
  }
  std::vector<LatticeNode> nodes;
  nodes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MDC_ASSIGN_OR_RETURN(LatticeNode node, ReadLatticeNode(reader));
    nodes.push_back(std::move(node));
  }
  return nodes;
}

double ProxyLoss(const Anonymization& anonymization,
                 const EquivalencePartition& partition) {
  (void)partition;
  double loss = 0.0;
  if (anonymization.scheme.has_value()) {
    loss += static_cast<double>(anonymization.scheme->TotalLevel());
  }
  if (anonymization.row_count() > 0) {
    loss += static_cast<double>(anonymization.SuppressedCount()) /
            static_cast<double>(anonymization.row_count());
  }
  return loss;
}

}  // namespace mdc
