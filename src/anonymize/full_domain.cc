#include "anonymize/full_domain.h"

#include <numeric>

#include "common/failpoint.h"

namespace mdc {

StatusOr<NodeEvaluation> EvaluateNode(std::shared_ptr<const Dataset> original,
                                      const HierarchySet& hierarchies,
                                      const LatticeNode& node, int k,
                                      const SuppressionBudget& budget,
                                      std::string algorithm,
                                      RunContext* run) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  MDC_RETURN_IF_ERROR(RunContext::Check(run));
  MDC_FAILPOINT("full_domain.evaluate");
  MDC_ASSIGN_OR_RETURN(GeneralizationScheme scheme,
                       GeneralizationScheme::Create(hierarchies, node));
  MDC_ASSIGN_OR_RETURN(
      Anonymization anonymization,
      Generalizer::Apply(std::move(original), scheme, std::move(algorithm)));

  EquivalencePartition partition =
      EquivalencePartition::FromAnonymization(anonymization);

  // Rows of classes smaller than k are suppression candidates.
  std::vector<size_t> to_suppress;
  for (const std::vector<size_t>& members : partition.classes()) {
    if (members.size() < static_cast<size_t>(k)) {
      to_suppress.insert(to_suppress.end(), members.begin(), members.end());
    }
  }

  NodeEvaluation evaluation{std::move(anonymization), std::move(partition), 0,
                            false};
  const size_t max_rows =
      budget.MaxRows(evaluation.anonymization.row_count());
  if (to_suppress.size() > max_rows) {
    // Infeasible at this node; report without suppressing so callers can
    // still inspect the raw partition.
    return evaluation;
  }
  if (!to_suppress.empty()) {
    MDC_RETURN_IF_ERROR(
        Generalizer::SuppressRows(evaluation.anonymization, to_suppress));
    evaluation.partition =
        EquivalencePartition::FromAnonymization(evaluation.anonymization);
    evaluation.suppressed_count = to_suppress.size();
  }
  size_t min_size = evaluation.partition.MinClassSizeExempting(
      evaluation.anonymization.suppressed);
  // min_size == 0 means every row is suppressed; that only satisfies k if
  // nothing remains to protect.
  evaluation.feasible =
      min_size >= static_cast<size_t>(k) ||
      evaluation.suppressed_count == evaluation.anonymization.row_count();
  return evaluation;
}

double ProxyLoss(const Anonymization& anonymization,
                 const EquivalencePartition& partition) {
  (void)partition;
  double loss = 0.0;
  if (anonymization.scheme.has_value()) {
    loss += static_cast<double>(anonymization.scheme->TotalLevel());
  }
  if (anonymization.row_count() > 0) {
    loss += static_cast<double>(anonymization.SuppressedCount()) /
            static_cast<double>(anonymization.row_count());
  }
  return loss;
}

}  // namespace mdc
