// Equivalence-class partitioning of a released table.
//
// Rows with identical quasi-identifier label tuples form an equivalence
// class. Suppressed rows all carry the top label in every QI cell, so they
// naturally coalesce into one class. Class order is deterministic
// (lexicographic in the label tuples).

#ifndef MDC_ANONYMIZE_EQUIVALENCE_H_
#define MDC_ANONYMIZE_EQUIVALENCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "anonymize/generalizer.h"
#include "table/dataset.h"

namespace mdc {

class EquivalencePartition {
 public:
  // Groups the rows of `anonymization.release` by its QI columns.
  static EquivalencePartition FromAnonymization(
      const Anonymization& anonymization);

  // Groups the rows of `dataset` by the given columns (used internally and
  // by Datafly's frequency loop before a release exists).
  static EquivalencePartition FromColumns(const Dataset& dataset,
                                          const std::vector<size_t>& columns);

  // Integer fast path: groups rows by their code tuples.
  // `code_columns[pos]` is a row-aligned code array whose codes lie in
  // [0, cardinalities[pos]). Codes must be order-isomorphic to the labels
  // they encode (hierarchy/level_codec.h guarantees this), so the class
  // order — ascending code tuples — is bit-identical to what FromColumns
  // produces over the label strings. Class members stay in row order.
  static EquivalencePartition FromCodeColumns(
      size_t row_count, const std::vector<std::vector<uint32_t>>& code_columns,
      const std::vector<uint32_t>& cardinalities);

  size_t class_count() const { return classes_.size(); }
  size_t row_count() const { return class_of_row_.size(); }

  // Row indices of each class; classes are in deterministic label order.
  const std::vector<std::vector<size_t>>& classes() const { return classes_; }
  const std::vector<size_t>& class_members(size_t class_id) const;

  size_t ClassOfRow(size_t row) const;
  size_t ClassSize(size_t class_id) const;

  // classes()[ClassOfRow(row)].size() for each row — the raw material of
  // the paper's equivalence-class-size property vector.
  std::vector<double> ClassSizePerRow() const;

  // Smallest class size; 0 for an empty partition.
  size_t MinClassSize() const;

  // Smallest class size among classes with at least one row for which
  // `exempt[row]` is false; suppressed rows are conventionally exempt when
  // algorithms check k-anonymity under a suppression budget.
  size_t MinClassSizeExempting(const std::vector<bool>& exempt) const;

 private:
  std::vector<std::vector<size_t>> classes_;
  std::vector<size_t> class_of_row_;
};

}  // namespace mdc

#endif  // MDC_ANONYMIZE_EQUIVALENCE_H_
