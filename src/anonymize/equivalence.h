// Equivalence-class partitioning of a released table.
//
// Rows with identical quasi-identifier label tuples form an equivalence
// class. Suppressed rows all carry the top label in every QI cell, so they
// naturally coalesce into one class. Class order is deterministic
// (lexicographic in the label tuples).
//
// Storage is CSR-shaped: one flat row-index array partitioned by an
// offsets table. A lattice search builds one (sometimes two) partitions
// per node, and the per-class vector-of-vectors this replaced spent more
// time in the allocator than in the grouping loop; the flat layout costs
// two allocations per build regardless of class count and keeps class
// iteration contiguous. Callers see classes through the lightweight
// ClassSpan/ClassRange views below.

#ifndef MDC_ANONYMIZE_EQUIVALENCE_H_
#define MDC_ANONYMIZE_EQUIVALENCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "anonymize/generalizer.h"
#include "table/dataset.h"

namespace mdc {

// Borrowed view of one class's row indices (ascending row order). Valid
// only while the owning EquivalencePartition is alive and unmodified.
class ClassSpan {
 public:
  ClassSpan() : data_(nullptr), size_(0) {}
  ClassSpan(const size_t* data, size_t size) : data_(data), size_(size) {}

  const size_t* begin() const { return data_; }
  const size_t* end() const { return data_ + size_; }
  const size_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t operator[](size_t i) const { return data_[i]; }
  size_t front() const { return data_[0]; }
  size_t back() const { return data_[size_ - 1]; }

  friend bool operator==(ClassSpan a, ClassSpan b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(ClassSpan a, ClassSpan b) { return !(a == b); }
  friend bool operator==(ClassSpan a, const std::vector<size_t>& b) {
    return a == ClassSpan(b.data(), b.size());
  }
  friend bool operator==(const std::vector<size_t>& a, ClassSpan b) {
    return ClassSpan(a.data(), a.size()) == b;
  }

 private:
  const size_t* data_;
  size_t size_;
};

class EquivalencePartition;

// Iterable range over a partition's classes, in canonical class order.
// Dereferencing yields ClassSpan values.
class ClassRange {
 public:
  class iterator {
   public:
    using value_type = ClassSpan;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;
    using pointer = const ClassSpan*;
    using reference = ClassSpan;

    iterator(const size_t* members, const size_t* offsets, size_t index)
        : members_(members), offsets_(offsets), index_(index) {}
    ClassSpan operator*() const {
      return ClassSpan(members_ + offsets_[index_],
                       offsets_[index_ + 1] - offsets_[index_]);
    }
    iterator& operator++() {
      ++index_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++index_;
      return old;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.index_ != b.index_;
    }

   private:
    const size_t* members_;
    const size_t* offsets_;
    size_t index_;
  };

  ClassRange(const size_t* members, const size_t* offsets, size_t count)
      : members_(members), offsets_(offsets), count_(count) {}

  iterator begin() const { return iterator(members_, offsets_, 0); }
  iterator end() const { return iterator(members_, offsets_, count_); }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  ClassSpan operator[](size_t i) const {
    return ClassSpan(members_ + offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  friend bool operator==(const ClassRange& a, const ClassRange& b) {
    if (a.count_ != b.count_) return false;
    for (size_t i = 0; i < a.count_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const ClassRange& a, const ClassRange& b) {
    return !(a == b);
  }

 private:
  const size_t* members_;
  const size_t* offsets_;
  size_t count_;
};

class EquivalencePartition {
 public:
  // Groups the rows of `anonymization.release` by its QI columns.
  static EquivalencePartition FromAnonymization(
      const Anonymization& anonymization);

  // Groups the rows of `dataset` by the given columns (used internally and
  // by Datafly's frequency loop before a release exists).
  static EquivalencePartition FromColumns(const Dataset& dataset,
                                          const std::vector<size_t>& columns);

  // Integer fast path: groups rows by their code tuples.
  // `code_columns[pos]` is a row-aligned code array whose codes lie in
  // [0, cardinalities[pos]). Codes must be order-isomorphic to the labels
  // they encode (hierarchy/level_codec.h guarantees this), so the class
  // order — ascending code tuples — is bit-identical to what FromColumns
  // produces over the label strings. Class members stay in row order.
  static EquivalencePartition FromCodeColumns(
      size_t row_count, const std::vector<std::vector<uint32_t>>& code_columns,
      const std::vector<uint32_t>& cardinalities);

  size_t class_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t row_count() const { return class_of_row_.size(); }

  // Views of each class's row indices; classes are in deterministic label
  // order. Views borrow from the partition — do not outlive it.
  ClassRange classes() const {
    return ClassRange(members_.data(), offsets_.data(), class_count());
  }
  ClassSpan class_members(size_t class_id) const;

  size_t ClassOfRow(size_t row) const;
  size_t ClassSize(size_t class_id) const;

  // classes()[ClassOfRow(row)].size() for each row — the raw material of
  // the paper's equivalence-class-size property vector.
  std::vector<double> ClassSizePerRow() const;

  // Smallest class size; 0 for an empty partition.
  size_t MinClassSize() const;

  // Smallest class size among classes with at least one row for which
  // `exempt[row]` is false; suppressed rows are conventionally exempt when
  // algorithms check k-anonymity under a suppression budget.
  size_t MinClassSizeExempting(const std::vector<bool>& exempt) const;

 private:
  // CSR storage: members_[offsets_[c] .. offsets_[c+1]) are class c's row
  // indices in ascending row order; offsets_ has class_count()+1 entries
  // (empty only for a default-constructed partition).
  std::vector<size_t> members_;
  std::vector<size_t> offsets_;
  std::vector<size_t> class_of_row_;
};

}  // namespace mdc

#endif  // MDC_ANONYMIZE_EQUIVALENCE_H_
