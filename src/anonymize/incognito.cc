#include "anonymize/incognito.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "hierarchy/level_codec.h"
#include "table/encoded_view.h"

namespace mdc {
namespace {

// Interned labels: label_ids[pos][level][row] is a small integer
// identifying Generalize(cell(row, column_of(pos)), level). Built by
// dictionary-encoding each column once and gathering through the per-level
// code tables — O(distinct) hierarchy lookups instead of O(rows), and the
// same Status on ungeneralizable values as the per-row path.
struct LabelTable {
  std::vector<std::vector<std::vector<int>>> label_ids;

  static StatusOr<LabelTable> Build(const Dataset& data,
                                    const HierarchySet& hierarchies) {
    MDC_ASSIGN_OR_RETURN(EncodedView view,
                         EncodedView::Build(data, hierarchies.columns()));
    MDC_ASSIGN_OR_RETURN(LevelCodec codec,
                         LevelCodec::Build(view, hierarchies));
    LabelTable table;
    table.label_ids.resize(hierarchies.size());
    for (size_t pos = 0; pos < hierarchies.size(); ++pos) {
      const AlignedVector<uint32_t>& codes = view.codes(pos);
      const int height = codec.height(pos);
      table.label_ids[pos].resize(static_cast<size_t>(height) + 1);
      for (int level = 0; level <= height; ++level) {
        const LevelCodeTable& lut = codec.table(pos, level);
        std::vector<int>& ids =
            table.label_ids[pos][static_cast<size_t>(level)];
        ids.resize(codes.size());
        for (size_t row = 0; row < codes.size(); ++row) {
          ids[row] = static_cast<int>(lut.value_to_label[codes[row]]);
        }
      }
    }
    return table;
  }
};

struct VectorHash {
  size_t operator()(const std::vector<int>& v) const {
    size_t h = 146527;
    for (int x : v) {
      h = h * 1000003 + static_cast<size_t>(x);
    }
    return h;
  }
};

// Frequency check: rows in classes smaller than k, over the projection of
// the data onto `subset` at `node` levels. Feasible iff the count fits in
// the suppression budget.
bool ProjectionFeasible(const LabelTable& labels,
                        const std::vector<size_t>& subset,
                        const std::vector<int>& node, size_t row_count,
                        int k, size_t max_suppressed) {
  std::unordered_map<std::vector<int>, size_t, VectorHash> counts;
  counts.reserve(row_count);
  std::vector<int> key(subset.size());
  for (size_t row = 0; row < row_count; ++row) {
    for (size_t i = 0; i < subset.size(); ++i) {
      key[i] = labels.label_ids[subset[i]][static_cast<size_t>(node[i])][row];
    }
    ++counts[key];
  }
  size_t undersized = 0;
  for (const auto& [group, count] : counts) {
    if (count < static_cast<size_t>(k)) undersized += count;
  }
  return undersized <= max_suppressed;
}

// Enumerates the nodes of the sub-lattice spanned by `subset`, by height.
void EnumerateSubLattice(const std::vector<int>& max_levels,
                         std::vector<std::vector<int>>& out) {
  // Mixed-radix count-up, then stable-sort by height for monotone sweeps.
  std::vector<int> node(max_levels.size(), 0);
  while (true) {
    out.push_back(node);
    size_t i = 0;
    while (i < node.size() && node[i] == max_levels[i]) {
      node[i] = 0;
      ++i;
    }
    if (i == node.size()) break;
    ++node[i];
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const std::vector<int>& a, const std::vector<int>& b) {
                     int ha = 0;
                     int hb = 0;
                     for (int v : a) ha += v;
                     for (int v : b) hb += v;
                     return ha < hb;
                   });
}

constexpr uint32_t kIncognitoPayloadVersion = 1;

}  // namespace

StatusOr<std::string> IncognitoCheckpoint::SaveCheckpoint() const {
  if (!captured) {
    return Status::FailedPrecondition("incognito checkpoint: no state");
  }
  SnapshotWriter writer(SnapshotKind::kIncognito, kIncognitoPayloadVersion);
  writer.WriteU64(next_subset);
  writer.WriteU64(next_node);
  writer.WriteU64(frequency_evaluations);
  writer.WriteU64(satisfying.size());
  for (const auto& [subset, nodes] : satisfying) {
    writer.WriteU64Vec(std::vector<uint64_t>(subset.begin(), subset.end()));
    writer.WriteU64(nodes.size());
    for (const std::vector<int>& node : nodes) writer.WriteI32Vec(node);
  }
  return writer.Finish();
}

Status IncognitoCheckpoint::ResumeFrom(std::string_view bytes) {
  MDC_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      SnapshotReader::Open(bytes, SnapshotKind::kIncognito,
                           kIncognitoPayloadVersion));
  IncognitoCheckpoint loaded;
  MDC_ASSIGN_OR_RETURN(loaded.next_subset, reader.ReadU64());
  MDC_ASSIGN_OR_RETURN(loaded.next_node, reader.ReadU64());
  MDC_ASSIGN_OR_RETURN(loaded.frequency_evaluations, reader.ReadU64());
  MDC_ASSIGN_OR_RETURN(uint64_t map_size, reader.ReadU64());
  if (map_size > reader.remaining() / sizeof(uint64_t)) {
    return Status::InvalidArgument("incognito checkpoint: map size exceeds data");
  }
  for (uint64_t i = 0; i < map_size; ++i) {
    MDC_ASSIGN_OR_RETURN(std::vector<uint64_t> subset_u64,
                         reader.ReadU64Vec());
    std::vector<size_t> subset(subset_u64.begin(), subset_u64.end());
    MDC_ASSIGN_OR_RETURN(uint64_t set_size, reader.ReadU64());
    if (set_size > reader.remaining() / sizeof(uint64_t)) {
      return Status::InvalidArgument(
          "incognito checkpoint: set size exceeds data");
    }
    std::set<std::vector<int>>& nodes = loaded.satisfying[std::move(subset)];
    for (uint64_t j = 0; j < set_size; ++j) {
      MDC_ASSIGN_OR_RETURN(std::vector<int> node, reader.ReadI32Vec());
      nodes.insert(std::move(node));
    }
  }
  MDC_RETURN_IF_ERROR(reader.ExpectEnd());
  loaded.captured = true;
  *this = std::move(loaded);
  return Status::Ok();
}

StatusOr<IncognitoResult> IncognitoAnonymize(
    std::shared_ptr<const Dataset> original, const HierarchySet& hierarchies,
    const IncognitoConfig& config, const LossFn& loss, RunContext* run,
    IncognitoCheckpoint* checkpoint) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (original == nullptr) {
    return Status::InvalidArgument("null original dataset");
  }
  TRACE_SPAN("incognito/search");
  MDC_METRIC_INC("search.incognito.runs");
  MDC_RETURN_IF_ERROR(hierarchies.CoversQuasiIdentifiers(original->schema()));
  MDC_ASSIGN_OR_RETURN(Lattice lattice, Lattice::ForHierarchies(hierarchies));
  MDC_ASSIGN_OR_RETURN(LabelTable labels,
                       LabelTable::Build(*original, hierarchies));
  // Best-effort accounting of the dominant allocation: one interned id per
  // (position, level, row).
  for (const auto& levels : labels.label_ids) {
    for (const auto& ids : levels) {
      RunContext::ChargeMemory(run, ids.size() * sizeof(int));
    }
  }
  const int threads = ThreadPool::ResolveThreadCount(config.threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  IncognitoResult result;
  result.lattice_size = lattice.NodeCount();
  const size_t m = hierarchies.size();
  const size_t row_count = original->row_count();
  const size_t max_suppressed = config.suppression.MaxRows(row_count);
  const std::vector<int> all_max = hierarchies.MaxLevels();

  // satisfying[subset] = set of satisfying level vectors over that subset.
  std::map<std::vector<size_t>, std::set<std::vector<int>>> satisfying;

  // Resume: restore accumulated verdicts and the iteration position.
  size_t start_subset = 0;
  size_t start_node = 0;
  if (checkpoint != nullptr && checkpoint->captured) {
    satisfying = checkpoint->satisfying;
    result.frequency_evaluations = checkpoint->frequency_evaluations;
    start_subset = static_cast<size_t>(checkpoint->next_subset);
    start_node = static_cast<size_t>(checkpoint->next_node);
  }

  // Subsets of {0..m-1} in order of increasing size.
  std::vector<std::vector<size_t>> subsets;
  for (uint64_t mask = 1; mask < (uint64_t{1} << m); ++mask) {
    std::vector<size_t> subset;
    for (size_t i = 0; i < m; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(i);
    }
    subsets.push_back(std::move(subset));
  }
  std::stable_sort(subsets.begin(), subsets.end(),
                   [](const std::vector<size_t>& a,
                      const std::vector<size_t>& b) {
                     return a.size() < b.size();
                   });

  // Full-QI subset = the last one (all positions).
  std::vector<size_t> full(m);
  for (size_t i = 0; i < m; ++i) full[i] = i;

  if (start_subset > subsets.size()) {
    return Status::InvalidArgument("incognito checkpoint: subset index out of range");
  }

  bool truncated = false;
  Status budget_status = Status::Ok();
  for (size_t subset_idx = start_subset; subset_idx < subsets.size();
       ++subset_idx) {
    if (!budget_status.ok()) break;
    const std::vector<size_t>& subset = subsets[subset_idx];
    std::vector<int> max_levels;
    for (size_t pos : subset) max_levels.push_back(all_max[pos]);
    std::vector<std::vector<int>> nodes;
    EnumerateSubLattice(max_levels, nodes);

    size_t first_node = subset_idx == start_subset ? start_node : 0;
    if (first_node > nodes.size()) {
      return Status::InvalidArgument("incognito checkpoint: node index out of range");
    }
    std::set<std::vector<int>>& sat = satisfying[subset];

    // Subset pruning: every (|S|-1)-projection must satisfy.
    auto subset_pruned = [&](const std::vector<int>& node) {
      if (subset.size() <= 1) return false;
      for (size_t drop = 0; drop < subset.size(); ++drop) {
        std::vector<size_t> sub_subset;
        std::vector<int> sub_node;
        for (size_t i = 0; i < subset.size(); ++i) {
          if (i == drop) continue;
          sub_subset.push_back(subset[i]);
          sub_node.push_back(node[i]);
        }
        if (satisfying[sub_subset].count(sub_node) == 0) return true;
      }
      return false;
    };
    // Generalization pruning: a satisfying direct predecessor implies the
    // node satisfies.
    auto implied_by_predecessor = [&](const std::vector<int>& node) {
      for (size_t i = 0; i < node.size(); ++i) {
        if (node[i] > 0) {
          std::vector<int> pred = node;
          --pred[i];
          if (sat.count(pred) != 0) return true;
        }
      }
      return false;
    };
    // Budget expiry at `node_idx`: capture the position, then degrade to
    // whatever the full-QI subset has accumulated so far — it is sound
    // (every node passed the frequency check) — or report the error.
    auto handle_budget = [&](size_t node_idx, const Status& status) {
      if (checkpoint != nullptr) {
        checkpoint->next_subset = subset_idx;
        checkpoint->next_node = node_idx;
        checkpoint->frequency_evaluations = result.frequency_evaluations;
        checkpoint->satisfying = satisfying;
        checkpoint->captured = true;
      }
      if (satisfying[full].empty()) return false;
      budget_status = status;
      truncated = true;
      return true;
    };

    if (!pool.has_value()) {
      for (size_t node_idx = first_node; node_idx < nodes.size();
           ++node_idx) {
        const std::vector<int>& node = nodes[node_idx];
        if (Status status = RunContext::Check(run); !status.ok()) {
          if (!handle_budget(node_idx, status)) return status;
          break;
        }
        MDC_FAILPOINT("incognito.node");
        if (subset_pruned(node)) {
          MDC_METRIC_INC("search.incognito.subset_pruned");
          continue;
        }
        if (implied_by_predecessor(node)) {
          MDC_METRIC_INC("search.incognito.implied_pruned");
          sat.insert(node);
          continue;
        }
        ++result.frequency_evaluations;
        MDC_METRIC_INC("search.incognito.frequency_checks");
        if (ProjectionFeasible(labels, subset, node, row_count, config.k,
                               max_suppressed)) {
          sat.insert(node);
        }
      }
    } else {
      // Wave-parallel sweep of the sub-lattice. Both prunings only consult
      // smaller subsets (complete) or nodes one height down, so nodes of
      // one height are independent: a wave admits nodes of a single height
      // — replaying the budget + failpoint sequence per node in sweep
      // order, resolving prunes inline — then runs the frequency checks
      // concurrently and commits verdicts in sweep order.
      auto height_of = [](const std::vector<int>& node) {
        int h = 0;
        for (int v : node) h += v;
        return h;
      };
      const size_t wave = static_cast<size_t>(pool->thread_count()) * 4;
      size_t node_idx = first_node;
      while (node_idx < nodes.size() && budget_status.ok()) {
        const int height = height_of(nodes[node_idx]);
        Status admit_error;  // Budget/failpoint error, at `node_idx`.
        bool admit_error_is_budget = false;
        std::vector<size_t> batch;  // Indices into `nodes`.
        while (node_idx < nodes.size() && batch.size() < wave &&
               height_of(nodes[node_idx]) == height) {
          const std::vector<int>& node = nodes[node_idx];
          admit_error = RunContext::Check(run);
          if (!admit_error.ok()) {
            admit_error_is_budget = true;
            break;
          }
          admit_error = MDC_FAILPOINT_STATUS("incognito.node");
          if (!admit_error.ok()) break;
          if (subset_pruned(node)) {
            MDC_METRIC_INC("search.incognito.subset_pruned");
            ++node_idx;
            continue;
          }
          if (implied_by_predecessor(node)) {
            MDC_METRIC_INC("search.incognito.implied_pruned");
            sat.insert(node);
            ++node_idx;
            continue;
          }
          batch.push_back(node_idx);
          ++node_idx;
        }
        std::vector<char> feasible(batch.size(), 0);
        pool->ParallelFor(batch.size(), [&](size_t j) {
          feasible[j] =
              ProjectionFeasible(labels, subset, nodes[batch[j]], row_count,
                                 config.k, max_suppressed)
                  ? 1
                  : 0;
        });
        for (size_t j = 0; j < batch.size(); ++j) {
          ++result.frequency_evaluations;
          MDC_METRIC_INC("search.incognito.frequency_checks");
          if (feasible[j] != 0) sat.insert(nodes[batch[j]]);
        }
        if (!admit_error.ok()) {
          // A budget error degrades exactly as in the serial sweep; an
          // injected failpoint error propagates as-is.
          if (!admit_error_is_budget) return admit_error;
          if (!handle_budget(node_idx, admit_error)) return admit_error;
        }
      }
    }
  }

  const std::set<std::vector<int>>& full_sat = satisfying[full];
  if (full_sat.empty()) {
    return Status::Infeasible(
        "Incognito: no k-anonymous full-domain generalization within the "
        "suppression budget");
  }
  result.anonymous_nodes.assign(full_sat.begin(), full_sat.end());

  // Minimal frontier: satisfying nodes with no satisfying predecessor.
  for (const std::vector<int>& node : result.anonymous_nodes) {
    bool minimal = true;
    for (size_t i = 0; i < node.size() && minimal; ++i) {
      if (node[i] > 0) {
        std::vector<int> pred = node;
        --pred[i];
        if (full_sat.count(pred) != 0) minimal = false;
      }
    }
    if (minimal) result.minimal_nodes.push_back(node);
  }

  bool have_best = false;
  for (const LatticeNode& node : result.minimal_nodes) {
    MDC_ASSIGN_OR_RETURN(NodeEvaluation evaluation,
                         EvaluateNode(original, hierarchies, node, config.k,
                                      config.suppression, "incognito"));
    MDC_CHECK_MSG(evaluation.feasible,
                  "Incognito-satisfying node fails full evaluation");
    double node_loss = loss(evaluation.anonymization, evaluation.partition);
    if (!have_best || node_loss < result.best_loss) {
      result.best_loss = node_loss;
      result.best_node = node;
      result.best = std::move(evaluation);
      have_best = true;
    }
  }
  result.run_stats = RunContext::Stats(run, truncated);
  return result;
}

}  // namespace mdc
