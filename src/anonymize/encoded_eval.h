// Columnar lattice-node evaluation.
//
// The legacy EvaluateNode() generalizes every cell through its hierarchy
// (string construction per row per column) and groups rows with a
// string-keyed map. EncodedNodeEvaluator does the same work in integer
// space: the dataset's QI columns are dictionary-encoded once
// (table/encoded_view.h), each (position, level) gets a code translation
// table built from the distinct values only (hierarchy/level_codec.h), and
// evaluating a node is then an O(rows) integer gather plus hash-grouping on
// packed code tuples. Label codes are assigned in sorted-label order, so
// the resulting EquivalencePartition is bit-identical to the legacy path's
// — same class order, same members, same ClassOfRow.
//
// Evaluate() reproduces EvaluateNode()'s observable sequence — the k
// check, RunContext::Check, the "full_domain.evaluate" failpoint, node
// validation, suppression policy, feasibility — without materializing the
// released table. Materialize() builds the full NodeEvaluation (release
// labels, suppressed rows starred) when a caller actually needs it, which
// the searches only do for the few feasible nodes they score.
//
// One intentional divergence: values that a hierarchy cannot generalize
// surface as an error from Build() (all levels are translated up front)
// instead of from the first node evaluation that touches the bad level.
// The Status itself is the same one the legacy path would return.
//
// EvaluateBatch() fans one batch of nodes out over a ThreadPool. Workers
// run with run = nullptr — the caller charges RunContext in deterministic
// node order *before* dispatch, so a step budget expires at exactly the
// same node index as a serial sweep (see the searches' wave loops).

#ifndef MDC_ANONYMIZE_ENCODED_EVAL_H_
#define MDC_ANONYMIZE_ENCODED_EVAL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anonymize/full_domain.h"
#include "common/thread_pool.h"
#include "hierarchy/level_codec.h"
#include "table/encoded_view.h"

namespace mdc {

// The immutable, dataset-derived half of an evaluator: the dictionary-coded
// QI columns and every (position, level) translation table. Building it is
// the expensive part of EncodedNodeEvaluator::Build, and it depends only on
// (dataset, hierarchies) — not on k, suppression, or any search config — so
// one bundle can back every lattice search against the same dataset. The
// service's DatasetCache keeps bundles resident across jobs and hands them
// back through SamaratiConfig/OptimalSearchConfig::encoded.
struct EncodedBundle {
  EncodedView view;
  LevelCodec codec;

  // The bytes Build() charges against a RunContext memory budget — charged
  // identically whether the bundle was built fresh or shared, so budget
  // accounting cannot observe the cache.
  uint64_t Bytes() const { return view.CodeBytes() + codec.TableBytes(); }
};

// Encodes the QI columns and builds every (position, level) code table.
// Pure function of (dataset, hierarchies); charges nothing.
StatusOr<std::shared_ptr<const EncodedBundle>> BuildEncodedBundle(
    const Dataset& original, const HierarchySet& hierarchies);

class EncodedNodeEvaluator {
 public:
  // What a search needs from a node before deciding to keep it. `partition`
  // matches legacy NodeEvaluation::partition exactly: post-suppression when
  // suppression fit the budget, the raw partition otherwise.
  struct Evaluation {
    EquivalencePartition partition;
    std::vector<size_t> suppressed_rows;  // Rows starred; empty over budget.
    size_t suppressed_count = 0;
    bool feasible = false;
  };

  // An unsuppressed release and its partition (the Pareto search's inputs).
  struct Candidate {
    Anonymization anonymization;
    EquivalencePartition partition;
  };

  // Encodes the QI columns and builds every (position, level) code table.
  // Charges `run` for the code arrays and translation tables. When `bundle`
  // is non-null it must have been built from the same (dataset, hierarchies)
  // pair — the encode/translate work is skipped, but the memory charge is
  // identical, so a run's budgets and counters cannot tell the difference.
  static StatusOr<EncodedNodeEvaluator> Build(
      std::shared_ptr<const Dataset> original, const HierarchySet& hierarchies,
      RunContext* run = nullptr,
      std::shared_ptr<const EncodedBundle> bundle = nullptr);

  // Integer-path equivalent of EvaluateNode(); thread-safe for concurrent
  // calls (pass run = nullptr from workers — RunContext is not).
  StatusOr<Evaluation> Evaluate(const LatticeNode& node, int k,
                                const SuppressionBudget& budget,
                                RunContext* run = nullptr) const;

  // Full NodeEvaluation as EvaluateNode() would have returned for `node`;
  // `evaluation` must come from Evaluate() with the same node and policy.
  StatusOr<NodeEvaluation> Materialize(const LatticeNode& node,
                                       const Evaluation& evaluation,
                                       std::string algorithm) const;

  // Release + raw partition with no suppression policy applied.
  StatusOr<Candidate> MaterializeUnsuppressed(const LatticeNode& node,
                                              std::string algorithm) const;

  const EncodedView& view() const { return bundle_->view; }
  const LevelCodec& codec() const { return bundle_->codec; }
  const std::shared_ptr<const EncodedBundle>& bundle() const {
    return bundle_;
  }
  size_t row_count() const { return bundle_->view.row_count(); }

 private:
  EncodedNodeEvaluator() = default;

  Status ValidateNode(const LatticeNode& node) const;

  // Gathers the per-position label-code columns for `node` into `out` and
  // the per-position label-space cardinalities into `cards`.
  void GatherLabelCodes(const LatticeNode& node,
                        std::vector<std::vector<uint32_t>>& out,
                        std::vector<uint32_t>& cards) const;

  std::shared_ptr<const Dataset> original_;
  HierarchySet hierarchies_;
  Schema release_schema_;
  std::shared_ptr<const EncodedBundle> bundle_;
};

// Evaluates `nodes` concurrently over `pool`, each with run = nullptr.
// results[i] corresponds to nodes[i]; a slot is only unset if the closure
// never ran (it always does). Callers charge budgets deterministically
// before calling and commit results in index order afterwards.
std::vector<std::optional<StatusOr<EncodedNodeEvaluator::Evaluation>>>
EvaluateBatch(const EncodedNodeEvaluator& evaluator,
              const std::vector<LatticeNode>& nodes, int k,
              const SuppressionBudget& budget, ThreadPool& pool);

}  // namespace mdc

#endif  // MDC_ANONYMIZE_ENCODED_EVAL_H_
