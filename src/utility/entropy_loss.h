// Entropy-based information loss (non-uniform entropy, after Gionis &
// Tassa / de Waal & Willenborg).
//
// A generalized cell that covers m of the attribute's M present distinct
// values loses log2(m) bits of information about the exact value,
// normalized by log2(M): a cell charge in [0, 1]. The per-tuple loss is
// the average charge over QI cells. Requires a full-domain scheme (uses
// the same label-coverage machinery as LossMetric).

#ifndef MDC_UTILITY_ENTROPY_LOSS_H_
#define MDC_UTILITY_ENTROPY_LOSS_H_

#include "anonymize/generalizer.h"
#include "core/property_vector.h"

namespace mdc {

class EntropyLoss {
 public:
  // Per-tuple loss in [0, 1]; lower is better.
  static StatusOr<PropertyVector> PerTupleLoss(
      const Anonymization& anonymization);

  // 1 - loss per tuple; higher is better.
  static StatusOr<PropertyVector> PerTupleUtility(
      const Anonymization& anonymization);

  static StatusOr<double> TotalLoss(const Anonymization& anonymization);
};

}  // namespace mdc

#endif  // MDC_UTILITY_ENTROPY_LOSS_H_
