// Normalized average equivalence class size C_AVG (LeFevre et al., 2006):
// (N / #classes) / k. Values near 1 mean classes are close to the minimum
// size k demands; larger values mean over-generalization. Also exposes the
// plain average class size — the paper's P_s-avg unary index (§3, = 3.4
// for T3a).

#ifndef MDC_UTILITY_AVG_CLASS_SIZE_H_
#define MDC_UTILITY_AVG_CLASS_SIZE_H_

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"

namespace mdc {

class AvgClassSize {
 public:
  // Average, over tuples, of the tuple's class size — P_s-avg(s) = Σs_i/N.
  static double PerTupleAverage(const EquivalencePartition& partition);

  // C_AVG = (N / #classes) / k; requires k >= 1 and a nonempty partition.
  static StatusOr<double> Normalized(const EquivalencePartition& partition,
                                     int k);
};

}  // namespace mdc

#endif  // MDC_UTILITY_AVG_CLASS_SIZE_H_
