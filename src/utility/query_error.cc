#include "utility/query_error.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace mdc {
namespace {

// Fraction of the class's numeric envelope [lo, hi] that overlaps the
// query range, under the uniform assumption. A point envelope is in or
// out.
double NumericOverlap(double class_lo, double class_hi, double query_lo,
                      double query_hi) {
  if (class_lo == class_hi) {
    return (class_lo >= query_lo && class_lo <= query_hi) ? 1.0 : 0.0;
  }
  double lo = std::max(class_lo, query_lo);
  double hi = std::min(class_hi, query_hi);
  if (hi < lo) return 0.0;
  return (hi - lo) / (class_hi - class_lo);
}

}  // namespace

StatusOr<QueryWorkload> QueryWorkload::Random(
    const Dataset& original, size_t numeric_column,
    std::optional<size_t> categorical_column, size_t query_count,
    double selectivity, Rng& rng) {
  if (query_count == 0) {
    return Status::InvalidArgument("query count must be positive");
  }
  if (selectivity <= 0.0 || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  MDC_ASSIGN_OR_RETURN(auto range, original.NumericRange(numeric_column));
  double span = range.second - range.first;
  if (span <= 0.0) {
    return Status::FailedPrecondition("numeric column is constant");
  }
  std::vector<Value> categorical_values;
  if (categorical_column.has_value()) {
    if (original.schema().attribute(*categorical_column).type !=
        AttributeType::kString) {
      return Status::InvalidArgument(
          "categorical predicate column must be a string column");
    }
    categorical_values = original.DistinctValues(*categorical_column);
  }

  QueryWorkload workload;
  for (size_t i = 0; i < query_count; ++i) {
    RangeQuery query;
    query.numeric_column = numeric_column;
    double width = span * selectivity;
    double start =
        range.first + rng.NextDouble() * std::max(span - width, 0.0);
    query.lo = start;
    query.hi = start + width;
    if (categorical_column.has_value()) {
      query.categorical_column = categorical_column;
      query.categorical_value =
          categorical_values[rng.NextBelow(categorical_values.size())]
              .AsString();
    }
    workload.queries_.push_back(std::move(query));
  }
  return workload;
}

double TrueCount(const Dataset& original, const RangeQuery& query) {
  double count = 0.0;
  for (size_t row = 0; row < original.row_count(); ++row) {
    double v = original.cell(row, query.numeric_column).AsNumber();
    if (v < query.lo || v > query.hi) continue;
    if (query.categorical_column.has_value() &&
        original.cell(row, *query.categorical_column).AsString() !=
            query.categorical_value) {
      continue;
    }
    count += 1.0;
  }
  return count;
}

StatusOr<double> EstimatedCount(const Anonymization& anonymization,
                                const EquivalencePartition& partition,
                                const RangeQuery& query) {
  const Dataset& original = *anonymization.original;
  if (query.numeric_column >= original.column_count()) {
    return Status::OutOfRange("query column out of range");
  }
  double estimate = 0.0;
  for (size_t class_id = 0; class_id < partition.class_count(); ++class_id) {
    ClassSpan members = partition.class_members(class_id);
    // Class envelope on the numeric attribute.
    double lo = original.cell(members[0], query.numeric_column).AsNumber();
    double hi = lo;
    for (size_t row : members) {
      double v = original.cell(row, query.numeric_column).AsNumber();
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    double fraction = NumericOverlap(lo, hi, query.lo, query.hi);
    if (fraction <= 0.0) continue;
    if (query.categorical_column.has_value()) {
      std::set<std::string> distinct;
      for (size_t row : members) {
        distinct.insert(
            original.cell(row, *query.categorical_column).AsString());
      }
      if (distinct.count(query.categorical_value) == 0) {
        continue;
      }
      fraction /= static_cast<double>(distinct.size());
    }
    estimate += fraction * static_cast<double>(members.size());
  }
  return estimate;
}

StatusOr<QueryErrorReport> EvaluateWorkload(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    const QueryWorkload& workload) {
  QueryErrorReport report;
  std::vector<double> errors;
  for (const RangeQuery& query : workload.queries()) {
    double truth = TrueCount(*anonymization.original, query);
    if (truth == 0.0) {
      ++report.skipped_queries;
      continue;
    }
    MDC_ASSIGN_OR_RETURN(double estimate,
                         EstimatedCount(anonymization, partition, query));
    errors.push_back(std::abs(estimate - truth) / truth);
  }
  report.evaluated_queries = errors.size();
  if (!errors.empty()) {
    double sum = 0.0;
    for (double e : errors) sum += e;
    report.mean_relative_error = sum / static_cast<double>(errors.size());
    std::sort(errors.begin(), errors.end());
    report.median_relative_error = errors[errors.size() / 2];
  }
  return report;
}

}  // namespace mdc
