// Discernibility metric (DM, Bayardo & Agrawal, ICDE 2005).
//
// Each tuple is charged the size of its equivalence class; suppressed
// tuples are charged the full table size N (they are indistinguishable
// from everything). DM = sum of charges. Lower is better.

#ifndef MDC_UTILITY_DISCERNIBILITY_H_
#define MDC_UTILITY_DISCERNIBILITY_H_

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"
#include "core/property_vector.h"

namespace mdc {

class Discernibility {
 public:
  // Per-tuple charge (class size, or N when suppressed). Lower is better.
  static PropertyVector PerTuplePenalty(const Anonymization& anonymization,
                                        const EquivalencePartition& partition);

  // Negated charges — the paper's higher-is-better orientation.
  static PropertyVector PerTupleUtility(const Anonymization& anonymization,
                                        const EquivalencePartition& partition);

  // Total DM cost.
  static double Total(const Anonymization& anonymization,
                      const EquivalencePartition& partition);
};

}  // namespace mdc

#endif  // MDC_UTILITY_DISCERNIBILITY_H_
