#include "utility/avg_class_size.h"

namespace mdc {

double AvgClassSize::PerTupleAverage(const EquivalencePartition& partition) {
  MDC_CHECK_GT(partition.row_count(), 0u);
  double sum = 0.0;
  for (ClassSpan members : partition.classes()) {
    sum += static_cast<double>(members.size()) *
           static_cast<double>(members.size());
  }
  return sum / static_cast<double>(partition.row_count());
}

StatusOr<double> AvgClassSize::Normalized(
    const EquivalencePartition& partition, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (partition.row_count() == 0 || partition.class_count() == 0) {
    return Status::FailedPrecondition("empty partition");
  }
  double avg = static_cast<double>(partition.row_count()) /
               static_cast<double>(partition.class_count());
  return avg / static_cast<double>(k);
}

}  // namespace mdc
