#include "utility/loss_metric.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

namespace mdc {
namespace {

// Distinct ORIGINAL values of `column`, computed once per call site.
std::vector<Value> DistinctOriginal(const Anonymization& anonymization,
                                    size_t column) {
  return anonymization.original->DistinctValues(column);
}

}  // namespace

StatusOr<double> LossMetric::LabelLoss(const Anonymization& anonymization,
                                       size_t column,
                                       const std::string& label) {
  if (!anonymization.scheme.has_value()) {
    return Status::FailedPrecondition(
        "LossMetric requires a full-domain scheme (use ClassSpreadLoss for "
        "multidimensional releases)");
  }
  const ValueHierarchy* hierarchy =
      anonymization.scheme->hierarchies().ForColumn(column);
  if (hierarchy == nullptr) {
    return Status::InvalidArgument("column has no hierarchy in the scheme");
  }
  std::vector<Value> distinct = DistinctOriginal(anonymization, column);
  const size_t total = distinct.size();
  if (total <= 1) return 0.0;
  size_t covered = 0;
  for (const Value& v : distinct) {
    if (hierarchy->Covers(label, v)) ++covered;
  }
  if (covered == 0) {
    return Status::Internal("label '" + label +
                            "' covers no present value of its column");
  }
  return static_cast<double>(covered - 1) / static_cast<double>(total - 1);
}

StatusOr<PropertyVector> LossMetric::PerTupleLoss(
    const Anonymization& anonymization) {
  if (!anonymization.scheme.has_value()) {
    return Status::FailedPrecondition(
        "LossMetric requires a full-domain scheme (use ClassSpreadLoss for "
        "multidimensional releases)");
  }
  const size_t rows = anonymization.row_count();
  std::vector<double> loss(rows, 0.0);
  for (size_t column : anonymization.qi_columns) {
    // Cache per-label losses; full-domain releases have few labels.
    std::unordered_map<std::string, double> label_loss;
    for (size_t r = 0; r < rows; ++r) {
      const std::string& label =
          anonymization.release.cell(r, column).AsString();
      auto it = label_loss.find(label);
      if (it == label_loss.end()) {
        MDC_ASSIGN_OR_RETURN(double charge,
                             LabelLoss(anonymization, column, label));
        it = label_loss.emplace(label, charge).first;
      }
      loss[r] += it->second;
    }
  }
  return PropertyVector("lm-loss", std::move(loss));
}

StatusOr<PropertyVector> LossMetric::PerTupleUtility(
    const Anonymization& anonymization) {
  MDC_ASSIGN_OR_RETURN(PropertyVector loss, PerTupleLoss(anonymization));
  const double qi = static_cast<double>(anonymization.qi_columns.size());
  std::vector<double> utility(loss.size());
  for (size_t i = 0; i < loss.size(); ++i) utility[i] = qi - loss[i];
  return PropertyVector("lm-utility", std::move(utility));
}

StatusOr<double> LossMetric::TotalLoss(const Anonymization& anonymization) {
  MDC_ASSIGN_OR_RETURN(PropertyVector loss, PerTupleLoss(anonymization));
  return loss.Sum();
}

StatusOr<PropertyVector> ClassSpreadLoss::PerTupleLoss(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) {
  const Dataset& original = *anonymization.original;
  const Schema& schema = original.schema();
  const size_t rows = anonymization.row_count();
  if (partition.row_count() != rows) {
    return Status::InvalidArgument("partition arity mismatch");
  }
  std::vector<double> loss(rows, 0.0);

  for (size_t column : anonymization.qi_columns) {
    const bool is_string =
        schema.attribute(column).type == AttributeType::kString;
    double global_spread = 1.0;
    size_t global_distinct = original.DistinctValues(column).size();
    if (!is_string) {
      MDC_ASSIGN_OR_RETURN(auto range, original.NumericRange(column));
      global_spread = range.second - range.first;
    }

    for (size_t class_id = 0; class_id < partition.class_count();
         ++class_id) {
      ClassSpan members = partition.class_members(class_id);
      double charge = 0.0;
      bool class_suppressed = true;
      for (size_t row : members) {
        if (!anonymization.suppressed[row]) {
          class_suppressed = false;
          break;
        }
      }
      if (class_suppressed) {
        charge = 1.0;
      } else if (is_string) {
        std::map<std::string, bool> distinct;
        for (size_t row : members) {
          distinct[original.cell(row, column).AsString()] = true;
        }
        charge = global_distinct <= 1
                     ? 0.0
                     : static_cast<double>(distinct.size() - 1) /
                           static_cast<double>(global_distinct - 1);
      } else {
        double lo = original.cell(members[0], column).AsNumber();
        double hi = lo;
        for (size_t row : members) {
          double v = original.cell(row, column).AsNumber();
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        charge = global_spread <= 0.0 ? 0.0 : (hi - lo) / global_spread;
      }
      for (size_t row : members) loss[row] += charge;
    }
  }
  return PropertyVector("class-spread-loss", std::move(loss));
}

StatusOr<PropertyVector> ClassSpreadLoss::PerTupleUtility(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) {
  MDC_ASSIGN_OR_RETURN(PropertyVector loss,
                       PerTupleLoss(anonymization, partition));
  const double qi = static_cast<double>(anonymization.qi_columns.size());
  std::vector<double> utility(loss.size());
  for (size_t i = 0; i < loss.size(); ++i) utility[i] = qi - loss[i];
  return PropertyVector("class-spread-utility", std::move(utility));
}

StatusOr<double> ClassSpreadLoss::TotalLoss(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) {
  MDC_ASSIGN_OR_RETURN(PropertyVector loss,
                       PerTupleLoss(anonymization, partition));
  return loss.Sum();
}

}  // namespace mdc
