#include "utility/precision.h"

namespace mdc {

StatusOr<PropertyVector> Precision::PerTuplePrecision(
    const Anonymization& anonymization) {
  if (!anonymization.scheme.has_value()) {
    return Status::FailedPrecondition(
        "Precision requires a full-domain scheme");
  }
  const GeneralizationScheme& scheme = *anonymization.scheme;
  const HierarchySet& hierarchies = scheme.hierarchies();
  const size_t qi = hierarchies.size();
  if (qi == 0) {
    return Status::FailedPrecondition("scheme binds no columns");
  }
  std::vector<double> precision(anonymization.row_count(), 0.0);
  for (size_t r = 0; r < anonymization.row_count(); ++r) {
    double charge = 0.0;
    for (size_t pos = 0; pos < qi; ++pos) {
      const int height = hierarchies.At(pos).height();
      const int level = anonymization.suppressed[r] ? height
                                                    : scheme.levels()[pos];
      charge += static_cast<double>(level) / static_cast<double>(height);
    }
    precision[r] = 1.0 - charge / static_cast<double>(qi);
  }
  return PropertyVector("precision", std::move(precision));
}

StatusOr<double> Precision::Overall(const Anonymization& anonymization) {
  MDC_ASSIGN_OR_RETURN(PropertyVector per_tuple,
                       PerTuplePrecision(anonymization));
  if (per_tuple.empty()) return 1.0;
  return per_tuple.Mean();
}

}  // namespace mdc
