#include "utility/entropy_loss.h"

#include <cmath>
#include <unordered_map>

namespace mdc {

StatusOr<PropertyVector> EntropyLoss::PerTupleLoss(
    const Anonymization& anonymization) {
  if (!anonymization.scheme.has_value()) {
    return Status::FailedPrecondition(
        "EntropyLoss requires a full-domain scheme");
  }
  const size_t rows = anonymization.row_count();
  const size_t qi = anonymization.qi_columns.size();
  if (qi == 0) {
    return Status::FailedPrecondition("no quasi-identifier columns");
  }
  std::vector<double> loss(rows, 0.0);
  for (size_t column : anonymization.qi_columns) {
    const ValueHierarchy* hierarchy =
        anonymization.scheme->hierarchies().ForColumn(column);
    if (hierarchy == nullptr) {
      return Status::InvalidArgument("column has no hierarchy in the scheme");
    }
    std::vector<Value> distinct =
        anonymization.original->DistinctValues(column);
    const double total = static_cast<double>(distinct.size());
    if (total <= 1.0) continue;  // A constant column loses nothing.
    const double denom = std::log2(total);

    std::unordered_map<std::string, double> label_charge;
    for (size_t r = 0; r < rows; ++r) {
      const std::string& label =
          anonymization.release.cell(r, column).AsString();
      auto it = label_charge.find(label);
      if (it == label_charge.end()) {
        size_t covered = 0;
        for (const Value& v : distinct) {
          if (hierarchy->Covers(label, v)) ++covered;
        }
        if (covered == 0) {
          return Status::Internal("label '" + label +
                                  "' covers no present value");
        }
        double charge = std::log2(static_cast<double>(covered)) / denom;
        it = label_charge.emplace(label, charge).first;
      }
      loss[r] += it->second / static_cast<double>(qi);
    }
  }
  return PropertyVector("entropy-loss", std::move(loss));
}

StatusOr<PropertyVector> EntropyLoss::PerTupleUtility(
    const Anonymization& anonymization) {
  MDC_ASSIGN_OR_RETURN(PropertyVector loss, PerTupleLoss(anonymization));
  std::vector<double> utility(loss.size());
  for (size_t i = 0; i < loss.size(); ++i) utility[i] = 1.0 - loss[i];
  return PropertyVector("entropy-utility", std::move(utility));
}

StatusOr<double> EntropyLoss::TotalLoss(const Anonymization& anonymization) {
  MDC_ASSIGN_OR_RETURN(PropertyVector loss, PerTupleLoss(anonymization));
  return loss.Sum();
}

}  // namespace mdc
