#include "utility/discernibility.h"

namespace mdc {

PropertyVector Discernibility::PerTuplePenalty(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) {
  const size_t rows = anonymization.row_count();
  MDC_CHECK_EQ(partition.row_count(), rows);
  std::vector<double> penalty(rows, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    if (anonymization.suppressed[r]) {
      penalty[r] = static_cast<double>(rows);
    } else {
      penalty[r] = static_cast<double>(
          partition.ClassSize(partition.ClassOfRow(r)));
    }
  }
  return PropertyVector("dm-penalty", std::move(penalty));
}

PropertyVector Discernibility::PerTupleUtility(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) {
  return PerTuplePenalty(anonymization, partition).Negated("dm-utility");
}

double Discernibility::Total(const Anonymization& anonymization,
                             const EquivalencePartition& partition) {
  return PerTuplePenalty(anonymization, partition).Sum();
}

}  // namespace mdc
