// Workload-based utility: relative error of range-count queries answered
// from the release vs the original microdata.
//
// A query selects rows by one numeric QI range plus (optionally) one
// categorical QI value. The original answer is an exact count; the release
// answer assumes uniformity inside each equivalence class — every row
// contributes the fraction of its class's ORIGINAL rows that satisfy the
// predicate... which the estimator cannot see. Instead, the standard
// uniform-class estimator is used: a class contributes
//   |class| * overlap_fraction
// where overlap_fraction is estimated per class from the class's value
// envelope (numeric: interval overlap; categorical: distinct-value
// overlap), computed from the release labels via the original rows it
// groups. Works for any Anonymization (full-domain, Mondrian, clustering).
//
// This is the utility axis on which multidimensional/local algorithms
// typically overtake full-domain schemes — a crossover the
// repro_query_error bench demonstrates.

#ifndef MDC_UTILITY_QUERY_ERROR_H_
#define MDC_UTILITY_QUERY_ERROR_H_

#include <optional>
#include <string>
#include <vector>

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"
#include "common/rng.h"

namespace mdc {

struct RangeQuery {
  size_t numeric_column = 0;  // Must be a numeric QI column.
  double lo = 0.0;            // Inclusive.
  double hi = 0.0;            // Inclusive.
  // Optional categorical equality predicate.
  std::optional<size_t> categorical_column;
  std::string categorical_value;
};

class QueryWorkload {
 public:
  // `selectivity` sets the expected width of the numeric range as a
  // fraction of the attribute's domain. Queries are drawn uniformly.
  static StatusOr<QueryWorkload> Random(const Dataset& original,
                                        size_t numeric_column,
                                        std::optional<size_t>
                                            categorical_column,
                                        size_t query_count,
                                        double selectivity, Rng& rng);

  const std::vector<RangeQuery>& queries() const { return queries_; }

 private:
  std::vector<RangeQuery> queries_;
};

struct QueryErrorReport {
  double mean_relative_error = 0.0;    // Of queries with nonzero truth.
  double median_relative_error = 0.0;
  size_t evaluated_queries = 0;        // Queries with nonzero true count.
  size_t skipped_queries = 0;          // True count was zero.
};

// Exact count on the original microdata.
double TrueCount(const Dataset& original, const RangeQuery& query);

// Uniform-class estimate on the release.
StatusOr<double> EstimatedCount(const Anonymization& anonymization,
                                const EquivalencePartition& partition,
                                const RangeQuery& query);

// Relative-error summary of the workload on one release.
StatusOr<QueryErrorReport> EvaluateWorkload(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    const QueryWorkload& workload);

}  // namespace mdc

#endif  // MDC_UTILITY_QUERY_ERROR_H_
