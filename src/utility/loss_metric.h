// Iyengar's general loss metric (LM, KDD 2002) and a class-spread (NCP)
// variant for hierarchy-free anonymizations.
//
// LM charges each generalized quasi-identifier cell (m-1)/(M-1), where m is
// the number of distinct values *present in the data set* that the cell's
// label covers and M the number of distinct present values of the
// attribute. A per-tuple loss is the sum over QI cells (in [0, #QI]);
// per-tuple utility is (#QI - loss), higher better — the orientation the
// paper's §5.5 example uses for its utility property vectors u_a, u_b.
//
// The paper does not fully specify the hierarchy conventions behind its
// printed utility numbers; present-value semantics reproduces the
// *structure* its argument needs (see DESIGN.md, substitution 1).
//
// The NCP variant needs no hierarchies: it charges a class the normalized
// spread of the original values inside it (numeric: range ratio;
// categorical: distinct-count ratio), so it applies to Mondrian releases.

#ifndef MDC_UTILITY_LOSS_METRIC_H_
#define MDC_UTILITY_LOSS_METRIC_H_

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"
#include "core/property_vector.h"

namespace mdc {

class LossMetric {
 public:
  // Requires anonymization.scheme (full-domain releases). Lower is better;
  // entries lie in [0, #QI].
  static StatusOr<PropertyVector> PerTupleLoss(
      const Anonymization& anonymization);

  // (#QI - loss_i) per tuple; higher is better.
  static StatusOr<PropertyVector> PerTupleUtility(
      const Anonymization& anonymization);

  // Sum of per-tuple losses.
  static StatusOr<double> TotalLoss(const Anonymization& anonymization);

  // LM charge of a single label for `column` of the original data set:
  // (covered-1)/(M-1) over distinct present values. Exposed for tests and
  // for the entropy-loss metric which shares the coverage machinery.
  static StatusOr<double> LabelLoss(const Anonymization& anonymization,
                                    size_t column, const std::string& label);
};

class ClassSpreadLoss {
 public:
  // Hierarchy-free per-tuple loss: for each QI attribute, the normalized
  // spread of ORIGINAL values within the tuple's equivalence class
  // (numeric: (max-min)/global range; categorical: (distinct-1)/(M-1)),
  // summed over QI attributes. Works for any Anonymization, including
  // Mondrian. Suppressed rows are charged the maximum (1 per attribute).
  static StatusOr<PropertyVector> PerTupleLoss(
      const Anonymization& anonymization,
      const EquivalencePartition& partition);

  static StatusOr<PropertyVector> PerTupleUtility(
      const Anonymization& anonymization,
      const EquivalencePartition& partition);

  static StatusOr<double> TotalLoss(const Anonymization& anonymization,
                                    const EquivalencePartition& partition);
};

}  // namespace mdc

#endif  // MDC_UTILITY_LOSS_METRIC_H_
