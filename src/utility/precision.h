// Sweeney's precision metric (Prec, IJUFKS 2002) for full-domain releases:
// each generalized cell is charged level/height of its hierarchy;
// Prec = 1 - average charge over all QI cells. Per-tuple precision is
// 1 - the average charge over the tuple's QI cells (suppressed tuples are
// charged the full height). Higher is better; values lie in [0, 1].

#ifndef MDC_UTILITY_PRECISION_H_
#define MDC_UTILITY_PRECISION_H_

#include "anonymize/generalizer.h"
#include "core/property_vector.h"

namespace mdc {

class Precision {
 public:
  // Requires anonymization.scheme.
  static StatusOr<PropertyVector> PerTuplePrecision(
      const Anonymization& anonymization);

  static StatusOr<double> Overall(const Anonymization& anonymization);
};

}  // namespace mdc

#endif  // MDC_UTILITY_PRECISION_H_
