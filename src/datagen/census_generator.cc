#include "datagen/census_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hierarchy/interval_hierarchy.h"
#include "hierarchy/suffix_hierarchy.h"
#include "hierarchy/taxonomy_hierarchy.h"

namespace mdc {
namespace {

constexpr const char* kZipPrefixes[] = {"13", "80", "94", "60",
                                        "30", "77", "02", "48"};

struct CategoricalSpec {
  const char* group;
  const char* leaf;
  double weight;
};

constexpr CategoricalSpec kEducation[] = {
    {"Low", "NoSchool", 0.03},     {"Low", "Primary", 0.07},
    {"Low", "SomeSecondary", 0.1}, {"Medium", "HighSchool", 0.32},
    {"Medium", "SomeCollege", 0.2}, {"Medium", "AssocDegree", 0.08},
    {"High", "Bachelors", 0.12},   {"High", "Masters", 0.06},
    {"High", "Doctorate", 0.02},
};

constexpr CategoricalSpec kMarital[] = {
    {"Married", "CivSpouse", 0.42},      {"Married", "AFSpouse", 0.02},
    {"Married", "SpouseAbsent", 0.04},   {"NotMarried", "NeverMarried", 0.3},
    {"NotMarried", "Divorced", 0.13},    {"NotMarried", "Separated", 0.04},
    {"NotMarried", "Widowed", 0.05},
};

constexpr CategoricalSpec kOccupation[] = {
    {"WhiteCollar", "Exec", 0.12},     {"WhiteCollar", "Prof", 0.13},
    {"WhiteCollar", "Sales", 0.11},    {"WhiteCollar", "Clerical", 0.12},
    {"BlueCollar", "Craft", 0.13},     {"BlueCollar", "Machine", 0.07},
    {"BlueCollar", "Transport", 0.05}, {"BlueCollar", "Labor", 0.06},
    {"Service", "Protective", 0.03},   {"Service", "HouseServ", 0.02},
    {"Service", "OtherServ", 0.16},
};

constexpr const char* kDiseases[] = {"Flu",   "Cold",   "Hypertension",
                                     "Diabetes", "HeartDisease", "Cancer",
                                     "HIV"};

template <size_t N>
std::shared_ptr<const TaxonomyHierarchy> BuildTaxonomy(
    const CategoricalSpec (&specs)[N]) {
  TaxonomyHierarchy::Builder builder;
  std::vector<std::string> groups;
  for (const CategoricalSpec& spec : specs) {
    if (std::find(groups.begin(), groups.end(), spec.group) == groups.end()) {
      groups.push_back(spec.group);
      builder.Add(spec.group, "*");
    }
  }
  for (const CategoricalSpec& spec : specs) {
    builder.Add(spec.leaf, spec.group);
  }
  auto tree = builder.Build();
  MDC_CHECK_MSG(tree.ok(), "census taxonomy must build");
  return std::make_shared<const TaxonomyHierarchy>(std::move(tree).value());
}

template <size_t N>
const char* DrawCategorical(const CategoricalSpec (&specs)[N], Rng& rng) {
  std::vector<double> weights;
  weights.reserve(N);
  for (const CategoricalSpec& spec : specs) weights.push_back(spec.weight);
  return specs[rng.NextWeighted(weights)].leaf;
}

int64_t DrawAge(Rng& rng) {
  // Mixture of three age bands, clamped to [17, 90].
  double draw = rng.NextDouble();
  double age = 0.0;
  if (draw < 0.45) {
    age = 28.0 + rng.NextGaussian() * 7.0;
  } else if (draw < 0.85) {
    age = 46.0 + rng.NextGaussian() * 9.0;
  } else {
    age = 68.0 + rng.NextGaussian() * 8.0;
  }
  return std::clamp<int64_t>(static_cast<int64_t>(std::lround(age)), 17, 90);
}

std::string DrawZip(Rng& rng, int regions) {
  const char* prefix =
      kZipPrefixes[rng.NextBelow(static_cast<uint64_t>(regions))];
  std::string zip = prefix;
  for (int i = 0; i < 3; ++i) {
    zip += static_cast<char>('0' + rng.NextBelow(10));
  }
  return zip;
}

std::string DrawDisease(Rng& rng, double skew) {
  constexpr size_t kCount = std::size(kDiseases);
  // Geometric-ish weights: weight_i proportional to (1 - skew)^i, so
  // skew 0 is uniform and larger skews concentrate on the first disease.
  std::vector<double> weights(kCount);
  double w = 1.0;
  for (size_t i = 0; i < kCount; ++i) {
    weights[i] = w;
    w *= (1.0 - skew);
    if (w < 1e-9) w = 1e-9;
  }
  return kDiseases[rng.NextWeighted(weights)];
}

}  // namespace

StatusOr<CensusData> GenerateCensus(const CensusConfig& config) {
  if (config.rows == 0) {
    return Status::InvalidArgument("rows must be positive");
  }
  if (config.zip_regions < 2 ||
      config.zip_regions > static_cast<int>(std::size(kZipPrefixes))) {
    return Status::InvalidArgument("zip_regions must be in [2, 8]");
  }
  if (config.sensitive_skew < 0.0 || config.sensitive_skew >= 1.0) {
    return Status::InvalidArgument("sensitive_skew must be in [0, 1)");
  }

  std::vector<AttributeDef> attributes = {
      {"age", AttributeType::kInt, AttributeRole::kQuasiIdentifier},
      {"zip", AttributeType::kString, AttributeRole::kQuasiIdentifier},
      {"education", AttributeType::kString, AttributeRole::kQuasiIdentifier},
      {"marital", AttributeType::kString, AttributeRole::kQuasiIdentifier},
  };
  if (config.with_occupation) {
    attributes.push_back({"occupation", AttributeType::kString,
                          AttributeRole::kQuasiIdentifier});
  }
  attributes.push_back(
      {"disease", AttributeType::kString, AttributeRole::kSensitive});
  MDC_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attributes)));

  Rng rng(config.seed);
  auto data = std::make_shared<Dataset>(schema);
  for (size_t r = 0; r < config.rows; ++r) {
    Dataset::Row row;
    row.push_back(Value(DrawAge(rng)));
    row.push_back(Value(DrawZip(rng, config.zip_regions)));
    row.push_back(Value(std::string(DrawCategorical(kEducation, rng))));
    row.push_back(Value(std::string(DrawCategorical(kMarital, rng))));
    if (config.with_occupation) {
      row.push_back(Value(std::string(DrawCategorical(kOccupation, rng))));
    }
    row.push_back(Value(DrawDisease(rng, config.sensitive_skew)));
    MDC_RETURN_IF_ERROR(data->AppendRow(std::move(row)));
  }

  CensusData census;
  census.sensitive_column = schema.attribute_count() - 1;

  // Age chain: 5-year, 10-year, 20-year, 40-year bins, all origin 0.
  auto age_hierarchy = IntervalHierarchy::Create(
      {{0.0, 5.0}, {0.0, 10.0}, {0.0, 20.0}, {0.0, 40.0}});
  MDC_CHECK(age_hierarchy.ok());
  MDC_RETURN_IF_ERROR(census.hierarchies.Bind(
      0, std::make_shared<const IntervalHierarchy>(
             std::move(age_hierarchy).value())));
  auto zip_hierarchy = SuffixHierarchy::Create(5);
  MDC_CHECK(zip_hierarchy.ok());
  MDC_RETURN_IF_ERROR(census.hierarchies.Bind(
      1, std::make_shared<const SuffixHierarchy>(
             std::move(zip_hierarchy).value())));
  MDC_RETURN_IF_ERROR(census.hierarchies.Bind(2, BuildTaxonomy(kEducation)));
  MDC_RETURN_IF_ERROR(census.hierarchies.Bind(3, BuildTaxonomy(kMarital)));
  if (config.with_occupation) {
    MDC_RETURN_IF_ERROR(
        census.hierarchies.Bind(4, BuildTaxonomy(kOccupation)));
  }
  census.data = std::move(data);
  return census;
}

}  // namespace mdc
