// Seeded synthetic census microdata (Adult-data-set stand-in; see
// DESIGN.md substitution 3).
//
// Attributes: age (int, QI), zip (string, QI), education (string, QI),
// marital (string, QI), occupation (string, QI), disease (string,
// sensitive). Hierarchies matching the attribute shapes are generated
// alongside the data: an interval chain for age, suffix masking for zip,
// and two-level taxonomies for the categorical attributes.

#ifndef MDC_DATAGEN_CENSUS_GENERATOR_H_
#define MDC_DATAGEN_CENSUS_GENERATOR_H_

#include <memory>

#include "hierarchy/scheme.h"
#include "table/dataset.h"

namespace mdc {

struct CensusConfig {
  size_t rows = 1000;
  uint64_t seed = 42;
  // Concentration of the sensitive attribute: 0 = uniform over diseases,
  // 1 = everyone has the most common one. Drives diversity/closeness
  // experiments.
  double sensitive_skew = 0.3;
  // Number of distinct zip regions to draw from (2..8). Fewer regions make
  // k-anonymity easier at low generalization levels.
  int zip_regions = 6;
  // Include the occupation attribute as a quasi-identifier (more QI
  // dimensions = harder instances).
  bool with_occupation = true;
};

struct CensusData {
  std::shared_ptr<const Dataset> data;
  HierarchySet hierarchies;  // One hierarchy per quasi-identifier.
  size_t sensitive_column = 0;
};

StatusOr<CensusData> GenerateCensus(const CensusConfig& config);

}  // namespace mdc

#endif  // MDC_DATAGEN_CENSUS_GENERATOR_H_
