// Quality index functions (Definition 3) and the ▶-better comparators of
// Section 5 of the paper.
//
// Unary indices map one property vector to a real; binary indices score
// one vector relative to another. The comparator predicates (…Better)
// implement the induced ▶-better relations:
//
//   P_rank(D)      = ||D - D_max||            (§5.1; lower rank is better)
//   P_cov(D1,D2)   = |{i : d1_i >= d2_i}| / N (§5.2)
//   P_spr(D1,D2)   = Σ max(d1_i - d2_i, 0)    (§5.3)
//   P_hv(D1,D2)    = Π d1_i - Π min(d1_i,d2_i)(§5.4; positive vectors)
//   P_binary(s,t)  = |{i : s_i > t_i}|        (§3 worked example)
//   P_k-anon(s)    = min(s),  P_s-avg(s) = Σ s_i / N (§3)

#ifndef MDC_CORE_QUALITY_INDEX_H_
#define MDC_CORE_QUALITY_INDEX_H_

#include <functional>
#include <string>
#include <vector>

#include "core/property_vector.h"

namespace mdc {

// ---------------------------------------------------------------- unary --

double MinIndex(const PropertyVector& d);   // P_k-anon.
double MaxIndex(const PropertyVector& d);
double MeanIndex(const PropertyVector& d);  // P_s-avg.
double SumIndex(const PropertyVector& d);

// P_rank: Lp distance to the most desired vector D_max (§5.1). Lower is
// better. Sizes must match.
double RankIndex(const PropertyVector& d, const PropertyVector& d_max,
                 double p = 2.0);

// ▶_rank with tolerance: true iff rank(d1) < rank(d2) - epsilon.
bool RankBetter(const PropertyVector& d1, const PropertyVector& d2,
                const PropertyVector& d_max, double epsilon = 0.0,
                double p = 2.0);

// --------------------------------------------------------------- binary --

// P_cov in [0, 1]; ties (>=) count toward the first argument.
double CoverageIndex(const PropertyVector& d1, const PropertyVector& d2);

// ▶_cov: P_cov(d1,d2) > P_cov(d2,d1).
bool CoverageBetter(const PropertyVector& d1, const PropertyVector& d2);

// P_binary of §3: the number of entries of d1 STRICTLY above d2's.
size_t StrictlyBetterCount(const PropertyVector& d1, const PropertyVector& d2);

// P_spr: total magnitude by which d1 exceeds d2 where it does.
double SpreadIndex(const PropertyVector& d1, const PropertyVector& d2);

// ▶_spr: P_spr(d1,d2) > P_spr(d2,d1).
bool SpreadBetter(const PropertyVector& d1, const PropertyVector& d2);

// P_hv: hypervolume (w.r.t. the origin) dominated solely by d1. All
// entries of both vectors must be positive (MDC_CHECK).
double HypervolumeIndex(const PropertyVector& d1, const PropertyVector& d2);

// Π d_i — the hypervolume of {x : 0 <= x <= D} (the region of §5.4's Ψ).
double DominatedHypervolume(const PropertyVector& d);

// ▶_hv: P_hv(d1,d2) > P_hv(d2,d1).
bool HypervolumeBetter(const PropertyVector& d1, const PropertyVector& d2);

// ------------------------------------------------- named functor bundles --

// Named unary index, the currency of the Theorem-1 insufficiency
// experiment (core/insufficiency.h).
struct UnaryIndex {
  std::string name;
  std::function<double(const PropertyVector&)> fn;
};

// A standard battery of unary indices: min, max, mean, sum, stddev, and
// L2-distance-to-dmax when `d_max` is nonempty.
std::vector<UnaryIndex> StandardUnaryIndices(
    const PropertyVector& d_max = PropertyVector());

// Named binary index, the P(X, Y) plugged into the multi-property
// comparators of §5.5–5.7.
struct BinaryIndex {
  std::string name;
  std::function<double(const PropertyVector&, const PropertyVector&)> fn;
};

BinaryIndex MakeCoverageIndex();
BinaryIndex MakeSpreadIndex();
BinaryIndex MakeHypervolumeIndex();

}  // namespace mdc

#endif  // MDC_CORE_QUALITY_INDEX_H_
