#include "core/multi_property.h"

#include <cmath>

namespace mdc {
namespace {

Status ValidateArity(const PropertySet& s1, const PropertySet& s2,
                     const BinaryIndexList& indices) {
  if (s1.size() != s2.size()) {
    return Status::InvalidArgument("property sets have different arity");
  }
  if (s1.empty()) {
    return Status::InvalidArgument("property sets are empty");
  }
  if (indices.size() != 1 && indices.size() != s1.size()) {
    return Status::InvalidArgument(
        "index list must have one entry or one per property");
  }
  for (size_t i = 0; i < s1.size(); ++i) {
    if (s1[i].size() != s2[i].size()) {
      return Status::InvalidArgument("aligned property vectors differ in "
                                     "size at position " + std::to_string(i));
    }
  }
  return Status::Ok();
}

const BinaryIndex& IndexAt(const BinaryIndexList& indices, size_t i) {
  return indices.size() == 1 ? indices[0] : indices[i];
}

}  // namespace

StatusOr<double> WtdIndex(const PropertySet& s1, const PropertySet& s2,
                          const std::vector<double>& weights,
                          const BinaryIndexList& indices) {
  MDC_RETURN_IF_ERROR(ValidateArity(s1, s2, indices));
  if (weights.size() != s1.size()) {
    return Status::InvalidArgument("weight vector arity mismatch");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w <= 0.0 || w >= 1.0) {
      // A single property with weight 1 is allowed as the degenerate case.
      if (!(weights.size() == 1 && w == 1.0)) {
        return Status::InvalidArgument(
            "weights must lie strictly between 0 and 1");
      }
    }
    sum += w;
  }
  if (std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("weights must sum to 1");
  }
  double value = 0.0;
  for (size_t i = 0; i < s1.size(); ++i) {
    value += weights[i] * IndexAt(indices, i).fn(s1[i], s2[i]);
  }
  return value;
}

StatusOr<bool> WtdBetter(const PropertySet& s1, const PropertySet& s2,
                         const std::vector<double>& weights,
                         const BinaryIndexList& indices) {
  MDC_ASSIGN_OR_RETURN(double forward, WtdIndex(s1, s2, weights, indices));
  MDC_ASSIGN_OR_RETURN(double backward, WtdIndex(s2, s1, weights, indices));
  return forward > backward;
}

StatusOr<size_t> LexIndex(const PropertySet& s1, const PropertySet& s2,
                          const std::vector<double>& epsilons,
                          const BinaryIndexList& indices) {
  MDC_RETURN_IF_ERROR(ValidateArity(s1, s2, indices));
  if (epsilons.size() != 1 && epsilons.size() != s1.size()) {
    return Status::InvalidArgument(
        "epsilon vector must have one entry or one per property");
  }
  for (double e : epsilons) {
    if (e < 0.0) {
      return Status::InvalidArgument("epsilons must be non-negative");
    }
  }
  for (size_t i = 0; i < s1.size(); ++i) {
    const BinaryIndex& index = IndexAt(indices, i);
    double forward = index.fn(s1[i], s2[i]);
    double backward = index.fn(s2[i], s1[i]);
    double epsilon = epsilons.size() == 1 ? epsilons[0] : epsilons[i];
    if (forward - backward > epsilon) return i + 1;
  }
  return s1.size() + 1;
}

StatusOr<bool> LexBetter(const PropertySet& s1, const PropertySet& s2,
                         const std::vector<double>& epsilons,
                         const BinaryIndexList& indices) {
  MDC_ASSIGN_OR_RETURN(size_t forward, LexIndex(s1, s2, epsilons, indices));
  MDC_ASSIGN_OR_RETURN(size_t backward, LexIndex(s2, s1, epsilons, indices));
  return forward < backward;
}

StatusOr<double> GoalIndex(const PropertySet& s1, const PropertySet& s2,
                           const std::vector<double>& goals,
                           const BinaryIndexList& indices) {
  MDC_RETURN_IF_ERROR(ValidateArity(s1, s2, indices));
  if (goals.size() != s1.size()) {
    return Status::InvalidArgument("goal vector arity mismatch");
  }
  double deviation = 0.0;
  for (size_t i = 0; i < s1.size(); ++i) {
    double achieved = IndexAt(indices, i).fn(s1[i], s2[i]);
    deviation += (achieved - goals[i]) * (achieved - goals[i]);
  }
  return deviation;
}

StatusOr<bool> GoalBetter(const PropertySet& s1, const PropertySet& s2,
                          const std::vector<double>& goals,
                          const BinaryIndexList& indices) {
  MDC_ASSIGN_OR_RETURN(double forward, GoalIndex(s1, s2, goals, indices));
  MDC_ASSIGN_OR_RETURN(double backward, GoalIndex(s2, s1, goals, indices));
  return forward < backward;
}

StatusOr<double> GoalIndexUnary(const PropertySet& s,
                                const std::vector<double>& goals,
                                const std::vector<UnaryIndex>& indices) {
  if (s.empty()) return Status::InvalidArgument("property set is empty");
  if (goals.size() != s.size() || indices.size() != s.size()) {
    return Status::InvalidArgument(
        "goal/index vectors must have one entry per property");
  }
  double deviation = 0.0;
  for (size_t i = 0; i < s.size(); ++i) {
    double achieved = indices[i].fn(s[i]);
    deviation += (achieved - goals[i]) * (achieved - goals[i]);
  }
  return deviation;
}

}  // namespace mdc
