// Preference-based comparison across multiple properties (§5.5–5.7).
//
// When an r-property anonymization induces several property vectors
// (privacy AND utility, or several privacy models), single-property
// indices must be combined. The paper suggests three mechanisms:
//
//   P_WTD(Υ1,Υ2)  = Σ w_i · P(D_1i, D_2i)                (weighted sum)
//   P_LEX(Υ1,Υ2)  = min{ i : P(D_1i,D_2i) - P(D_2i,D_1i) > ε_i }
//                                                 (ε-lexicographic, 1-based)
//   P_GOAL(Υ1,Υ2) = Σ (P(D_1i,D_2i) - g_i)²              (goal-based)
//
// Each property position may use its own binary index P (coverage for a
// privacy property, spread for a utility property, ...). Higher P values
// are assumed better; negate an index otherwise.

#ifndef MDC_CORE_MULTI_PROPERTY_H_
#define MDC_CORE_MULTI_PROPERTY_H_

#include <vector>

#include "common/status.h"
#include "core/dominance.h"
#include "core/quality_index.h"

namespace mdc {

// Per-position binary indices; a single-element vector is broadcast to
// all r positions.
using BinaryIndexList = std::vector<BinaryIndex>;

// --------------------------------------------------------------- P_WTD --

// Weights must be positive and sum to 1 (tolerance 1e-9); arities must
// match the property sets.
StatusOr<double> WtdIndex(const PropertySet& s1, const PropertySet& s2,
                          const std::vector<double>& weights,
                          const BinaryIndexList& indices);

// ▶_WTD: P_WTD(Υ1,Υ2) > P_WTD(Υ2,Υ1).
StatusOr<bool> WtdBetter(const PropertySet& s1, const PropertySet& s2,
                         const std::vector<double>& weights,
                         const BinaryIndexList& indices);

// --------------------------------------------------------------- P_LEX --

// Returns the FIRST (1-based) property position where Υ1 beats Υ2 by more
// than ε_i; returns r+1 when Υ1 is nowhere significantly better. Epsilons
// must be non-negative; a single-element epsilon vector is broadcast.
StatusOr<size_t> LexIndex(const PropertySet& s1, const PropertySet& s2,
                          const std::vector<double>& epsilons,
                          const BinaryIndexList& indices);

// ▶_LEX: P_LEX(Υ1,Υ2) < P_LEX(Υ2,Υ1).
StatusOr<bool> LexBetter(const PropertySet& s1, const PropertySet& s2,
                         const std::vector<double>& epsilons,
                         const BinaryIndexList& indices);

// -------------------------------------------------------------- P_GOAL --

// Sum-of-squares deviation of the achieved index values from the goal
// vector; SMALLER is better.
StatusOr<double> GoalIndex(const PropertySet& s1, const PropertySet& s2,
                           const std::vector<double>& goals,
                           const BinaryIndexList& indices);

// ▶_GOAL: P_GOAL(Υ1,Υ2) < P_GOAL(Υ2,Υ1).
StatusOr<bool> GoalBetter(const PropertySet& s1, const PropertySet& s2,
                          const std::vector<double>& goals,
                          const BinaryIndexList& indices);

// Unary-index variant (§5.7's closing remark): deviation of unary index
// values of Υ1's vectors from goal values derived from goal property
// vectors. One unary index per position.
StatusOr<double> GoalIndexUnary(const PropertySet& s,
                                const std::vector<double>& goals,
                                const std::vector<UnaryIndex>& indices);

}  // namespace mdc

#endif  // MDC_CORE_MULTI_PROPERTY_H_
