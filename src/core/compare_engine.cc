#include "core/compare_engine.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/compare_kernels.h"
#include "core/quality_index.h"

namespace mdc {
namespace {

// One-vs-many evaluation of a run of pairs (i, j_0..j_{count-1}) sharing
// their first row. Blocks are the OUTER loop and partners the inner one,
// so each block of row i is loaded once per `count` partner blocks — at
// N=1e6 (rows far beyond LLC) that cuts DRAM traffic per pair-element
// from 16 bytes toward 8·(1+count)/count.
//
// Bit-exactness vs the per-pair path: every per-partner accumulator
// (counts, spreads, hv own/shared products) advances across blocks in
// index order exactly as ComputePairwiseStats does, and the own1 product
// depends only on row i, so hoisting it out of the partner loop keeps
// its chain identical for every pair.
void EvaluateRowGroupPacked(const PropertyMatrix& matrix, size_t i,
                            const std::pair<size_t, size_t>* pairs,
                            size_t count, const AllPairsOptions& options,
                            const std::vector<double>& row_mins,
                            PairComparison* out) {
  const CompareKernels& kernels = ActiveCompareKernels();
  const size_t n = matrix.cols();
  const double* d1 = matrix.row(i);
  const bool with_hv = options.include_hypervolume;
  std::vector<PairwiseStats> stats(count);
  double own1 = 1.0;
  std::vector<double> own2;
  std::vector<double> shared;
  if (with_hv) {
    own2.assign(count, 1.0);
    shared.assign(count, 1.0);
  }
  for (size_t start = 0; start < n; start += options.block) {
    const size_t end = std::min(n, start + options.block);
    const size_t len = end - start;
    if (with_hv) {
      for (size_t c = start; c < end; ++c) {
        MDC_CHECK_MSG(d1[c] > 0.0,
                      "hypervolume indices require strictly positive entries");
        own1 *= d1[c];
      }
    }
    for (size_t s = 0; s < count; ++s) {
      const double* d2 = matrix.row(pairs[s].second);
      kernels.count_spread(d1 + start, d2 + start, len, &stats[s].gt12,
                           &stats[s].gt21, &stats[s].spr12, &stats[s].spr21);
      if (with_hv) {
        for (size_t c = start; c < end; ++c) {
          MDC_CHECK_MSG(
              d2[c] > 0.0,
              "hypervolume indices require strictly positive entries");
          own2[s] *= d2[c];
          shared[s] *= std::min(d1[c], d2[c]);
        }
      }
    }
  }
  for (size_t s = 0; s < count; ++s) {
    const auto [first, second] = pairs[s];
    // Finite entries are totally ordered, so the weak counts follow from
    // the strict ones by totality.
    stats[s].ge12 = n - stats[s].gt21;
    stats[s].ge21 = n - stats[s].gt12;
    PairComparison& pair = out[s];
    pair.first = first;
    pair.second = second;
    pair.relation = RelationFromStats(stats[s]);
    pair.cov12 = CoverageFromStats(stats[s], n, /*forward=*/true);
    pair.cov21 = CoverageFromStats(stats[s], n, /*forward=*/false);
    pair.binary12 = stats[s].gt12;
    pair.binary21 = stats[s].gt21;
    pair.spr12 = stats[s].spr12;
    pair.spr21 = stats[s].spr21;
    // Minima were hoisted to one pass per row (they depend on a single
    // row), so the group kernel skips its min sweep.
    pair.min1 = row_mins[first];
    pair.min2 = row_mins[second];
    if (with_hv) {
      pair.hv12 = own1 - shared[s];
      pair.hv21 = own2[s] - shared[s];
    }
  }
}

// The differential oracle: the same pair scored by the legacy
// element-at-a-time code paths.
PairComparison ComparePairScalar(const PropertySet& rows, size_t i, size_t j,
                                 const AllPairsOptions& options) {
  PairComparison pair;
  pair.first = i;
  pair.second = j;
  const PropertyVector& d1 = rows[i];
  const PropertyVector& d2 = rows[j];
  pair.relation = CompareDominance(d1, d2);
  pair.cov12 = CoverageIndex(d1, d2);
  pair.cov21 = CoverageIndex(d2, d1);
  pair.binary12 = StrictlyBetterCount(d1, d2);
  pair.binary21 = StrictlyBetterCount(d2, d1);
  pair.spr12 = SpreadIndex(d1, d2);
  pair.spr21 = SpreadIndex(d2, d1);
  pair.min1 = MinIndex(d1);
  pair.min2 = MinIndex(d2);
  if (options.include_hypervolume) {
    pair.hv12 = HypervolumeIndex(d1, d2);
    pair.hv21 = HypervolumeIndex(d2, d1);
  }
  return pair;
}

Status ValidateKinds(const PropertyMatrix& s1,
                     const std::vector<PackedBinaryIndexKind>& kinds) {
  if (kinds.size() != 1 && kinds.size() != s1.rows()) {
    return Status::InvalidArgument(
        "index list must have one entry or one per property");
  }
  return Status::Ok();
}

Status ValidateAlignment(const PropertyMatrix& s1, const PropertyMatrix& s2) {
  if (s1.rows() != s2.rows()) {
    return Status::InvalidArgument("property sets have different arity");
  }
  if (s1.empty()) {
    return Status::InvalidArgument("property sets are empty");
  }
  if (s1.cols() != s2.cols()) {
    return Status::InvalidArgument("aligned property vectors differ in size");
  }
  return Status::Ok();
}

PackedBinaryIndexKind KindAt(const std::vector<PackedBinaryIndexKind>& kinds,
                             size_t i) {
  return kinds.size() == 1 ? kinds[0] : kinds[i];
}

Status RequirePositive(const PropertyMatrix& matrix) {
  for (size_t r = 0; r < matrix.rows(); ++r) {
    const double* values = matrix.row(r);
    for (size_t c = 0; c < matrix.cols(); ++c) {
      if (!(values[c] > 0.0)) {
        return Status::InvalidArgument(
            "hypervolume indices require strictly positive entries "
            "(property '" +
            matrix.name(r) + "', position " + std::to_string(c) + ")");
      }
    }
  }
  return Status::Ok();
}

// P_cov / P_spr / P_hv of one aligned row pair, by kind. The spread and
// hypervolume accumulations run in index order, matching the scalar code.
double PackedBinaryValue(PackedBinaryIndexKind kind, const double* a,
                         const double* b, size_t n, bool forward) {
  PairwiseStats stats = ComputePairwiseStats(
      a, b, n, /*with_hv=*/kind == PackedBinaryIndexKind::kHypervolume,
      kCompareBlockSize, /*with_min=*/false);  // No kind reads the mins.
  switch (kind) {
    case PackedBinaryIndexKind::kCoverage:
      return CoverageFromStats(stats, n, forward);
    case PackedBinaryIndexKind::kSpread:
      return forward ? stats.spr12 : stats.spr21;
    case PackedBinaryIndexKind::kHypervolume:
      return forward ? stats.hv12 : stats.hv21;
  }
  return 0.0;
}

}  // namespace

const char* CompareEngineName(CompareEngine engine) {
  switch (engine) {
    case CompareEngine::kScalar:
      return "scalar";
    case CompareEngine::kPacked:
      return "packed";
  }
  return "unknown";
}

StatusOr<CompareEngine> ParseCompareEngine(const std::string& name) {
  if (name == "scalar") return CompareEngine::kScalar;
  if (name == "packed") return CompareEngine::kPacked;
  return Status::InvalidArgument("unknown compare engine '" + name +
                                 "' (expected scalar|packed)");
}

bool PackedWeaklyDominates(const double* d1, const double* d2, size_t n) {
  return ActiveCompareKernels().weakly_dominates(d1, d2, n);
}

bool PackedStronglyDominates(const double* d1, const double* d2, size_t n) {
  const CompareKernels& kernels = ActiveCompareKernels();
  if (!kernels.weakly_dominates(d1, d2, n)) return false;
  bool first_better = false;
  bool second_better = false;
  kernels.strict_flags(d1, d2, n, &first_better, &second_better);
  return first_better;
}

bool PackedNonDominated(const double* d1, const double* d2, size_t n) {
  bool first_better = false;
  bool second_better = false;
  ActiveCompareKernels().strict_flags(d1, d2, n, &first_better,
                                      &second_better);
  return first_better && second_better;
}

DominanceRelation PackedCompareDominance(const double* d1, const double* d2,
                                         size_t n) {
  bool first_better = false;
  bool second_better = false;
  ActiveCompareKernels().strict_flags(d1, d2, n, &first_better,
                                      &second_better);
  if (first_better && second_better) return DominanceRelation::kIncomparable;
  if (first_better) return DominanceRelation::kFirstDominates;
  if (second_better) return DominanceRelation::kSecondDominates;
  return DominanceRelation::kEqual;
}

double PackedRankIndex(const double* d, const double* d_max, size_t n,
                       double p) {
  MDC_CHECK_GE(p, 1.0);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += std::pow(std::abs(d[i] - d_max[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

PairwiseStats ComputePairwiseStats(const double* d1, const double* d2,
                                   size_t n, bool with_hv, size_t block,
                                   bool with_min) {
  MDC_CHECK_GT(n, 0u);
  MDC_CHECK_GT(block, 0u);
  const CompareKernels& kernels = ActiveCompareKernels();
  PairwiseStats stats;
  stats.with_hv = with_hv;
  stats.min1 = d1[0];
  stats.min2 = d2[0];
  double own1 = 1.0;
  double own2 = 1.0;
  double shared = 1.0;
  for (size_t start = 0; start < n; start += block) {
    const size_t end = std::min(n, start + block);
    const size_t len = end - start;
    // Fused strict counts + spread sums, one load per cache line. The
    // counts are order-free; the spread accumulators carry across blocks
    // in index order so results match the scalar code bit for bit
    // (reassociating per block would not; see compare_kernels.h for how
    // the SIMD variants keep the chain order). Only the two strict
    // counters are accumulated; the weak counts follow from totality
    // once the sweep is done.
    kernels.count_spread(d1 + start, d2 + start, len, &stats.gt12,
                         &stats.gt21, &stats.spr12, &stats.spr21);
    if (with_min) {
      // Running mins, blocked for locality, with min_element's
      // first-occurrence rule (the kernel contract).
      stats.min1 = kernels.row_min(d1 + start, len, stats.min1);
      stats.min2 = kernels.row_min(d2 + start, len, stats.min2);
    }
    if (with_hv) {
      for (size_t i = start; i < end; ++i) {
        MDC_CHECK_MSG(d1[i] > 0.0 && d2[i] > 0.0,
                      "hypervolume indices require strictly positive entries");
        own1 *= d1[i];
        own2 *= d2[i];
        shared *= std::min(d1[i], d2[i]);
      }
    }
  }
  if (with_hv) {
    stats.hv12 = own1 - shared;
    stats.hv21 = own2 - shared;
  }
  // Finite entries are totally ordered: d1[i] >= d2[i] ⟺ ¬(d2[i] > d1[i]).
  stats.ge12 = n - stats.gt21;
  stats.ge21 = n - stats.gt12;
  return stats;
}

DominanceRelation RelationFromStats(const PairwiseStats& stats) {
  const bool first_better = stats.gt12 > 0;
  const bool second_better = stats.gt21 > 0;
  if (first_better && second_better) return DominanceRelation::kIncomparable;
  if (first_better) return DominanceRelation::kFirstDominates;
  if (second_better) return DominanceRelation::kSecondDominates;
  return DominanceRelation::kEqual;
}

double CoverageFromStats(const PairwiseStats& stats, size_t n, bool forward) {
  MDC_CHECK_GT(n, 0u);
  return static_cast<double>(forward ? stats.ge12 : stats.ge21) /
         static_cast<double>(n);
}

ComparatorOutcome OutcomeFromScalars(double first, double second,
                                     double epsilon) {
  if (first > second + epsilon) return ComparatorOutcome::kFirstBetter;
  if (second > first + epsilon) return ComparatorOutcome::kSecondBetter;
  return ComparatorOutcome::kEquivalent;
}

void CommitComparisonMetrics(DominanceRelation relation, size_t cols) {
  MDC_METRIC_INC("cmp.pairs_compared");
  MDC_METRIC_ADD("cmp.elements", static_cast<uint64_t>(cols));
  switch (relation) {
    case DominanceRelation::kEqual:
      MDC_METRIC_INC("cmp.relation.equal");
      break;
    case DominanceRelation::kFirstDominates:
      MDC_METRIC_INC("cmp.relation.first");
      break;
    case DominanceRelation::kSecondDominates:
      MDC_METRIC_INC("cmp.relation.second");
      break;
    case DominanceRelation::kIncomparable:
      MDC_METRIC_INC("cmp.relation.incomparable");
      break;
  }
}

const PairComparison& AllPairsResult::Pair(size_t i, size_t j) const {
  MDC_CHECK_LT(i, j);
  MDC_CHECK_LT(j, rows);
  // Row-major pair order: pairs (i, *) start after all pairs (i', *) with
  // i' < i, i.e. after i*rows - i*(i+1)/2 entries.
  const size_t offset = i * rows - i * (i + 1) / 2 + (j - i - 1);
  MDC_CHECK_LT(offset, pairs.size());
  return pairs[offset];
}

StatusOr<AllPairsResult> AllPairsCompare(const PropertyMatrix& matrix,
                                         const AllPairsOptions& options,
                                         RunContext* run) {
  if (matrix.empty()) {
    return Status::InvalidArgument("empty property matrix");
  }
  if (options.block == 0) {
    return Status::InvalidArgument("block size must be positive");
  }
  const bool with_rank = !options.d_max.empty();
  if (with_rank && options.d_max.size() != matrix.cols()) {
    return Status::InvalidArgument("rank ideal size does not match matrix");
  }
  if (options.include_hypervolume) {
    MDC_RETURN_IF_ERROR(RequirePositive(matrix));
  }
  MDC_METRIC_INC("cmp.runs");

  const bool packed = options.engine == CompareEngine::kPacked;
  PropertySet scalar_rows;
  std::vector<double> row_mins;
  if (packed) {
    // One min pass per row instead of two per pair: minima are unary, so
    // this turns O(r²·N) min work into O(r·N). Unbudgeted, like the
    // scalar engine's per-pair MinIndex calls.
    row_mins.reserve(matrix.rows());
    const CompareKernels& kernels = ActiveCompareKernels();
    for (size_t r = 0; r < matrix.rows(); ++r) {
      const double* d = matrix.row(r);
      row_mins.push_back(kernels.row_min(d, matrix.cols(), d[0]));
    }
  } else {
    scalar_rows = matrix.ToSet();
  }

  AllPairsResult result;
  result.rows = matrix.rows();
  result.cols = matrix.cols();

  // Per-row ranks first, in row order (unary; cheap next to the pairs).
  if (with_rank) {
    const double* ideal = options.d_max.values().data();
    result.ranks.reserve(matrix.rows());
    for (size_t r = 0; r < matrix.rows(); ++r) {
      MDC_RETURN_IF_ERROR(RunContext::Check(run));
      double rank = packed ? PackedRankIndex(matrix.row(r), ideal,
                                             matrix.cols(), options.rank_p)
                           : RankIndex(scalar_rows[r], options.d_max,
                                       options.rank_p);
      result.ranks.push_back(rank);
      MDC_METRIC_INC("cmp.rank_rows");
    }
  }

  std::vector<std::pair<size_t, size_t>> index_of_pair;
  index_of_pair.reserve(matrix.rows() * (matrix.rows() - 1) / 2);
  for (size_t i = 0; i < matrix.rows(); ++i) {
    for (size_t j = i + 1; j < matrix.rows(); ++j) {
      index_of_pair.emplace_back(i, j);
    }
  }
  result.pairs.reserve(index_of_pair.size());

  ThreadPool pool(ThreadPool::ResolveThreadCount(options.threads));
  // Waves are sized for the grouped packed path: enough pairs that runs
  // sharing a first row amortize its block loads, capped groups so one
  // long run cannot serialize a multi-threaded wave. Wave/group sizing
  // affects scheduling only — per-pair results are pure and the commit
  // below replays admission order, so every choice here is
  // thread-count-invariant.
  const size_t threads = static_cast<size_t>(pool.thread_count());
  const size_t wave_size = std::max<size_t>(32, threads * 32);
  const size_t group_cap = threads == 1 ? 32 : 8;

  size_t next = 0;
  Status admit = Status::Ok();
  std::vector<PairComparison> slots;
  std::vector<std::pair<size_t, size_t>> groups;  // (wave offset, count)
  while (next < index_of_pair.size()) {
    // Serial admission: budget charges replay in pair order, so a step
    // budget truncates at the identical pair for every thread count.
    const size_t begin = next;
    while (next < index_of_pair.size() && next - begin < wave_size) {
      admit = RunContext::Check(run);
      if (!admit.ok()) break;
      ++next;
    }
    const size_t count = next - begin;
    if (count == 0) break;
    slots.assign(count, PairComparison{});
    if (packed) {
      // Runs of pairs sharing a first row evaluate one-vs-many.
      groups.clear();
      size_t s = 0;
      while (s < count) {
        size_t e = s + 1;
        while (e < count && e - s < group_cap &&
               index_of_pair[begin + e].first ==
                   index_of_pair[begin + s].first) {
          ++e;
        }
        groups.emplace_back(s, e - s);
        s = e;
      }
      pool.ParallelFor(groups.size(), [&](size_t g) {
        const auto [offset, size] = groups[g];
        EvaluateRowGroupPacked(matrix, index_of_pair[begin + offset].first,
                               index_of_pair.data() + begin + offset, size,
                               options, row_mins, slots.data() + offset);
      });
    } else {
      pool.ParallelFor(count, [&](size_t s) {
        const auto [i, j] = index_of_pair[begin + s];
        slots[s] = ComparePairScalar(scalar_rows, i, j, options);
      });
    }
    // In-order commit: results append and counters increment in admission
    // order regardless of evaluation schedule.
    for (size_t s = 0; s < count; ++s) {
      if (with_rank) {
        slots[s].rank1 = result.ranks[slots[s].first];
        slots[s].rank2 = result.ranks[slots[s].second];
      }
      CommitComparisonMetrics(slots[s].relation, matrix.cols());
      result.pairs.push_back(slots[s]);
    }
    if (!admit.ok()) break;
  }
  MDC_RETURN_IF_ERROR(admit);
  return result;
}

StatusOr<double> PackedWtdIndex(
    const PropertyMatrix& s1, const PropertyMatrix& s2,
    const std::vector<double>& weights,
    const std::vector<PackedBinaryIndexKind>& kinds) {
  MDC_RETURN_IF_ERROR(ValidateAlignment(s1, s2));
  MDC_RETURN_IF_ERROR(ValidateKinds(s1, kinds));
  if (weights.size() != s1.rows()) {
    return Status::InvalidArgument("weight vector arity mismatch");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w <= 0.0 || w >= 1.0) {
      // A single property with weight 1 is allowed as the degenerate case.
      if (!(weights.size() == 1 && w == 1.0)) {
        return Status::InvalidArgument(
            "weights must lie strictly between 0 and 1");
      }
    }
    sum += w;
  }
  if (std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("weights must sum to 1");
  }
  for (size_t i = 0; i < s1.rows(); ++i) {
    if (KindAt(kinds, i) == PackedBinaryIndexKind::kHypervolume) {
      MDC_RETURN_IF_ERROR(RequirePositive(s1));
      MDC_RETURN_IF_ERROR(RequirePositive(s2));
      break;
    }
  }
  double value = 0.0;
  for (size_t i = 0; i < s1.rows(); ++i) {
    value += weights[i] * PackedBinaryValue(KindAt(kinds, i), s1.row(i),
                                            s2.row(i), s1.cols(),
                                            /*forward=*/true);
  }
  return value;
}

StatusOr<size_t> PackedLexIndex(
    const PropertyMatrix& s1, const PropertyMatrix& s2,
    const std::vector<double>& epsilons,
    const std::vector<PackedBinaryIndexKind>& kinds) {
  MDC_RETURN_IF_ERROR(ValidateAlignment(s1, s2));
  MDC_RETURN_IF_ERROR(ValidateKinds(s1, kinds));
  if (epsilons.size() != 1 && epsilons.size() != s1.rows()) {
    return Status::InvalidArgument(
        "epsilon vector must have one entry or one per property");
  }
  for (double e : epsilons) {
    if (e < 0.0) {
      return Status::InvalidArgument("epsilons must be non-negative");
    }
  }
  for (size_t i = 0; i < s1.rows(); ++i) {
    if (KindAt(kinds, i) == PackedBinaryIndexKind::kHypervolume) {
      MDC_RETURN_IF_ERROR(RequirePositive(s1));
      MDC_RETURN_IF_ERROR(RequirePositive(s2));
      break;
    }
  }
  for (size_t i = 0; i < s1.rows(); ++i) {
    const PackedBinaryIndexKind kind = KindAt(kinds, i);
    double forward =
        PackedBinaryValue(kind, s1.row(i), s2.row(i), s1.cols(), true);
    double backward =
        PackedBinaryValue(kind, s1.row(i), s2.row(i), s1.cols(), false);
    double epsilon = epsilons.size() == 1 ? epsilons[0] : epsilons[i];
    if (forward - backward > epsilon) return i + 1;
  }
  return s1.rows() + 1;
}

bool PackedSetWeaklyDominates(const PropertyMatrix& s1,
                              const PropertyMatrix& s2) {
  MDC_CHECK_EQ(s1.rows(), s2.rows());
  MDC_CHECK_EQ(s1.cols(), s2.cols());
  for (size_t i = 0; i < s1.rows(); ++i) {
    if (!PackedWeaklyDominates(s1.row(i), s2.row(i), s1.cols())) return false;
  }
  return true;
}

bool PackedSetStronglyDominates(const PropertyMatrix& s1,
                                const PropertyMatrix& s2) {
  MDC_CHECK_EQ(s1.rows(), s2.rows());
  MDC_CHECK_EQ(s1.cols(), s2.cols());
  if (!PackedSetWeaklyDominates(s1, s2)) return false;
  for (size_t i = 0; i < s1.rows(); ++i) {
    if (PackedStronglyDominates(s1.row(i), s2.row(i), s1.cols())) return true;
  }
  return false;
}

}  // namespace mdc
