#include "core/export.h"

#include <algorithm>

#include "common/csv.h"
#include "common/durable_io.h"
#include "common/strings.h"

namespace mdc {

StatusOr<std::string> SeriesToCsv(
    const std::vector<PropertyVector>& series) {
  if (series.empty()) {
    return Status::InvalidArgument("no series to export");
  }
  const size_t n = series[0].size();
  for (const PropertyVector& s : series) {
    if (s.size() != n) {
      return Status::InvalidArgument("series sizes differ");
    }
  }
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"tuple"};
  for (const PropertyVector& s : series) {
    header.push_back(s.name().empty() ? "series" : s.name());
  }
  rows.push_back(std::move(header));
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const PropertyVector& s : series) {
      row.push_back(FormatCompact(s[i], 6));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

Status WriteSeriesCsv(const std::string& path,
                      const std::vector<PropertyVector>& series) {
  MDC_ASSIGN_OR_RETURN(std::string csv, SeriesToCsv(series));
  // Durable: a crash mid-write must never leave a torn CSV at `path`.
  return DurableWriteFile(path, csv);
}

StatusOr<std::vector<std::pair<double, double>>> LorenzCurve(
    const PropertyVector& d) {
  if (d.empty()) {
    return Status::InvalidArgument("empty property vector");
  }
  std::vector<double> sorted = d.values();
  double total = 0.0;
  for (double v : sorted) {
    if (v < 0.0) {
      return Status::InvalidArgument(
          "Lorenz curves need non-negative values");
    }
    total += v;
  }
  if (total <= 0.0) {
    return Status::FailedPrecondition("property vector sums to zero");
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> points;
  points.reserve(sorted.size() + 1);
  points.emplace_back(0.0, 0.0);
  double cumulative = 0.0;
  const double n = static_cast<double>(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    points.emplace_back(static_cast<double>(i + 1) / n, cumulative / total);
  }
  return points;
}

StatusOr<std::string> LorenzCurveCsv(const PropertyVector& d) {
  MDC_ASSIGN_OR_RETURN(auto points, LorenzCurve(d));
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"population_share", "property_share"});
  for (const auto& [x, y] : points) {
    rows.push_back({FormatCompact(x, 6), FormatCompact(y, 6)});
  }
  return WriteCsv(rows);
}

}  // namespace mdc
