// Dispatched block-level primitives of the packed comparison engine.
//
// ComputePairwiseStats and the raw dominance kernels
// (core/compare_engine.h) are thin blocked drivers over the function
// table below; scalar, AVX2, and AVX-512 variants live in
// compare_kernels_{scalar,avx2,avx512}.cc and a call site picks one via
// CompareKernelsFor(ActiveSimdLevel()).
//
// Every variant is required to be BIT-IDENTICAL to the scalar one — not
// approximately equal. How each primitive keeps that promise under
// vectorization:
//
//  - count_spread (fused strict counts + spread sums, one pass so each
//    cache line is loaded once):
//      * the two strict-inequality counts are integer sums of order-free
//        indicators, so lane order is irrelevant. Vector compares
//        produce the same per-element predicate as scalar `>` (IEEE
//        compares are exact), and popcounts of the masks sum to the same
//        totals.
//      * Σ max(d1[i]-d2[i], 0) MUST accumulate in index order (FP
//        addition does not reassociate). The vector variants compute the
//        per-element addends in parallel — vsubpd and vmaxpd are
//        IEEE-exact per lane, so each addend is bit-identical to the
//        scalar one — but feed the running sum serially, in lane = index
//        order. Zero addends are free to add OR skip, by this argument:
//        the sum starts at +0.0 and every addend is max(diff, 0.0) ∈
//        {±0.0} ∪ (0, ∞), so the accumulator is always +0.0 or positive,
//        and for such s, s + (±0.0) == s bitwise (IEEE 754: x + 0 is
//        exact, and +0.0 + -0.0 = +0.0). The vector variants exploit
//        this branchlessly: each vector's live (nonzero) addends are
//        compress-packed into a dense chunk buffer in index order, and
//        the serial chain then sums the buffer — dropping the identity
//        adds without any data-dependent branch, which would mispredict
//        on exactly the mixed data the engine sees. The chunk tail is
//        accumulated after the buffered adds, preserving index order.
//  - row_min: the running std::min keeps the accumulator on ties, i.e.
//    returns the FIRST element attaining the minimum value. For finite
//    doubles the only same-value/different-bits case is ±0.0, so the
//    vector variants take an order-free vector min (value-exact for any
//    reduction order over a total order) and, iff the result equals 0.0,
//    rescan for the first element == 0.0 to recover the scalar path's
//    first-occurrence bit pattern.
//  - weakly_dominates / strict_flags: booleans derived from order-free
//    predicates; early exit affects speed only.
//
// The hypervolume products and the P_rank pow-sum are deliberately NOT
// in this table: their running product/sum chains are order-pinned like
// the spreads but have no zero-skip identity (x·1.0 shortcuts never
// arise in real data) and P_rank is libm-pow-bound, so a vector variant
// could only reassociate — which the bit-exactness contract forbids.
// They stay in the blocked driver as scalar chains at every level.
//
// All primitives take unaligned pointers and arbitrary n (tails are
// masked or finished scalar; no variant reads past [0, n)).

#ifndef MDC_CORE_COMPARE_KERNELS_H_
#define MDC_CORE_COMPARE_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu_dispatch.h"

namespace mdc {

struct CompareKernels {
  // One fused pass: gt12 += |{i : a[i] > b[i]}|, gt21 += |{i : b[i] >
  // a[i]}|, spr12 += Σ max(a[i]-b[i], 0), spr21 += Σ max(b[i]-a[i], 0),
  // the spreads in index order (see the bit-exactness argument above).
  void (*count_spread)(const double* a, const double* b, size_t n,
                       uint64_t* gt12, uint64_t* gt21, double* spr12,
                       double* spr21);
  // Running min of init and d[0..n) with first-occurrence semantics.
  double (*row_min)(const double* d, size_t n, double init);
  // false iff any a[i] < b[i].
  bool (*weakly_dominates)(const double* a, const double* b, size_t n);
  // any12 = ∃i a[i] > b[i]; any21 = ∃i b[i] > a[i]. May stop scanning
  // once both are true.
  void (*strict_flags)(const double* a, const double* b, size_t n,
                       bool* any12, bool* any21);
};

// The table for one level. Levels compiled out (non-x86 builds) alias
// the scalar table, so this is total over the enum.
const CompareKernels& CompareKernelsFor(SimdLevel level);

// Convenience: CompareKernelsFor(ActiveSimdLevel()).
const CompareKernels& ActiveCompareKernels();

// Per-variant tables, exposed so the dispatch test can drive each one
// explicitly regardless of the active level.
extern const CompareKernels kCompareKernelsScalar;
#if defined(MDC_HAVE_AVX2_KERNELS)
extern const CompareKernels kCompareKernelsAvx2;
#endif
#if defined(MDC_HAVE_AVX512_KERNELS)
extern const CompareKernels kCompareKernelsAvx512;
#endif

}  // namespace mdc

#endif  // MDC_CORE_COMPARE_KERNELS_H_
