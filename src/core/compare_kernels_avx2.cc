// AVX2 (4 × f64) variants of the comparison primitives. Compiled with
// -mavx2 for this file only; see compare_kernels.h for the
// bit-exactness arguments each kernel relies on.

#include <immintrin.h>

#include <algorithm>

#include "core/compare_kernels.h"

namespace mdc {
namespace {

// Permutation table emulating AVX-512's vcompresspd for 4 doubles
// viewed as 8 × i32 lanes: entry [mask] lists the i32 index pairs of the
// doubles whose mask bit is set, in ascending lane order (zero-padded).
alignas(32) constexpr uint32_t kCompressLut[16][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0}, {0, 1, 0, 0, 0, 0, 0, 0},
    {2, 3, 0, 0, 0, 0, 0, 0}, {0, 1, 2, 3, 0, 0, 0, 0},
    {4, 5, 0, 0, 0, 0, 0, 0}, {0, 1, 4, 5, 0, 0, 0, 0},
    {2, 3, 4, 5, 0, 0, 0, 0}, {0, 1, 2, 3, 4, 5, 0, 0},
    {6, 7, 0, 0, 0, 0, 0, 0}, {0, 1, 6, 7, 0, 0, 0, 0},
    {2, 3, 6, 7, 0, 0, 0, 0}, {0, 1, 2, 3, 6, 7, 0, 0},
    {4, 5, 6, 7, 0, 0, 0, 0}, {0, 1, 4, 5, 6, 7, 0, 0},
    {2, 3, 4, 5, 6, 7, 0, 0}, {0, 1, 2, 3, 4, 5, 6, 7},
};

// Compress-then-sum spread accumulation — the AVX2 shape of the AVX-512
// kernel (see compare_kernels_avx512.cc for the full argument). Phase A
// is branchless: max_pd(0, diff) reproduces std::max(diff, 0.0) bitwise
// (vmaxpd returns its second operand on NaN and on ±0.0 ties, exactly
// like std::max returns its first), the NEQ_UQ mask keeps positive and
// NaN addends, and a vpermd through kCompressLut packs the live addends
// densely in index order. Phase B runs the serial chain over live
// addends only; dropping ±0.0 addends is the zero-skip identity.
void CountSpreadAvx2(const double* a, const double* b, size_t n,
                     uint64_t* gt12, uint64_t* gt21, double* spr12,
                     double* spr21) {
  const __m256d zero = _mm256_setzero_pd();
  uint64_t c12 = 0, c21 = 0;
  double s12 = *spr12, s21 = *spr21;
  constexpr size_t kChunk = 512;
  alignas(32) double buf12[kChunk + 4];
  alignas(32) double buf21[kChunk + 4];
  size_t i = 0;
  while (i < n) {
    const size_t chunk_end = std::min(n, i + kChunk);
    size_t len12 = 0, len21 = 0;
    for (; i + 4 <= chunk_end; i += 4) {
      // One prefetch per half line consumed per stream, 4 KiB ahead —
      // covers DRAM latency when the engine streams LLC-sized rows.
      // Prefetching past n is safe (prefetch never faults) and cheap.
      _mm_prefetch(reinterpret_cast<const char*>(a + i + 512), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(b + i + 512), _MM_HINT_T0);
      __m256d va = _mm256_loadu_pd(a + i);
      __m256d vb = _mm256_loadu_pd(b + i);
      c12 += static_cast<unsigned>(__builtin_popcount(
          _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_GT_OQ))));
      c21 += static_cast<unsigned>(__builtin_popcount(
          _mm256_movemask_pd(_mm256_cmp_pd(vb, va, _CMP_GT_OQ))));
      __m256d m12 = _mm256_max_pd(zero, _mm256_sub_pd(va, vb));
      __m256d m21 = _mm256_max_pd(zero, _mm256_sub_pd(vb, va));
      int k12 = _mm256_movemask_pd(_mm256_cmp_pd(m12, zero, _CMP_NEQ_UQ));
      int k21 = _mm256_movemask_pd(_mm256_cmp_pd(m21, zero, _CMP_NEQ_UQ));
      __m256i perm12 = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompressLut[k12]));
      __m256i perm21 = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompressLut[k21]));
      _mm256_storeu_pd(buf12 + len12,
                       _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
                           _mm256_castpd_si256(m12), perm12)));
      len12 += static_cast<unsigned>(__builtin_popcount(
          static_cast<unsigned>(k12)));
      _mm256_storeu_pd(buf21 + len21,
                       _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
                           _mm256_castpd_si256(m21), perm21)));
      len21 += static_cast<unsigned>(__builtin_popcount(
          static_cast<unsigned>(k21)));
    }
    for (size_t l = 0; l < len12; ++l) s12 += buf12[l];
    for (size_t l = 0; l < len21; ++l) s21 += buf21[l];
    // Chunk tail (only in the final chunk), after the buffered adds so
    // index order is preserved.
    for (; i < chunk_end; ++i) {
      c12 += a[i] > b[i] ? 1u : 0u;
      c21 += b[i] > a[i] ? 1u : 0u;
      s12 += std::max(a[i] - b[i], 0.0);
      s21 += std::max(b[i] - a[i], 0.0);
    }
  }
  *gt12 += c12;
  *gt21 += c21;
  *spr12 = s12;
  *spr21 = s21;
}

double RowMinAvx2(const double* d, size_t n, double init) {
  double min_value = init;
  size_t i = 0;
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(init);
    for (; i + 4 <= n; i += 4) {
      acc = _mm256_min_pd(acc, _mm256_loadu_pd(d + i));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (int l = 0; l < 4; ++l) min_value = std::min(min_value, lanes[l]);
  }
  for (; i < n; ++i) min_value = std::min(min_value, d[i]);
  // The reduction is value-exact for finite inputs but may return the
  // wrong zero sign; the scalar path keeps the FIRST element attaining
  // the minimum, so when the minimum is a zero, rescan for it.
  if (min_value == 0.0) {
    if (init == 0.0) return init;
    for (size_t j = 0; j < n; ++j) {
      if (d[j] == 0.0) return d[j];
    }
  }
  return min_value;
}

bool WeaklyDominatesAvx2(const double* a, const double* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d va = _mm256_loadu_pd(a + i);
    __m256d vb = _mm256_loadu_pd(b + i);
    if (_mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_LT_OQ))) return false;
  }
  for (; i < n; ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

void StrictFlagsAvx2(const double* a, const double* b, size_t n, bool* any12,
                     bool* any21) {
  bool f12 = false, f21 = false;
  size_t i = 0;
  for (; i + 4 <= n && !(f12 && f21); i += 4) {
    __m256d va = _mm256_loadu_pd(a + i);
    __m256d vb = _mm256_loadu_pd(b + i);
    f12 |= _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_GT_OQ)) != 0;
    f21 |= _mm256_movemask_pd(_mm256_cmp_pd(vb, va, _CMP_GT_OQ)) != 0;
  }
  for (; i < n && !(f12 && f21); ++i) {
    if (a[i] > b[i]) f12 = true;
    if (b[i] > a[i]) f21 = true;
  }
  *any12 = f12;
  *any21 = f21;
}

}  // namespace

const CompareKernels kCompareKernelsAvx2 = {
    CountSpreadAvx2, RowMinAvx2, WeaklyDominatesAvx2, StrictFlagsAvx2,
};

}  // namespace mdc
