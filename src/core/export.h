// Exporting framework outputs for external plotting.
//
// Property vectors, comparison series and Lorenz curves (the graphical
// form of the bias Gini coefficient) serialize to CSV so the figures the
// repro binaries print as text can be re-drawn with any plotting tool.

#ifndef MDC_CORE_EXPORT_H_
#define MDC_CORE_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/property_vector.h"

namespace mdc {

// CSV with one "tuple" index column and one column per series; all series
// must share the same size.
StatusOr<std::string> SeriesToCsv(
    const std::vector<PropertyVector>& series);
Status WriteSeriesCsv(const std::string& path,
                      const std::vector<PropertyVector>& series);

// Lorenz curve of a non-negative property vector: points (i/n,
// cumulative_share_i) for i = 0..n, sorted ascending. The area between
// the curve and the diagonal is gini/2.
StatusOr<std::vector<std::pair<double, double>>> LorenzCurve(
    const PropertyVector& d);

// Lorenz curve as two-column CSV ("population_share,property_share").
StatusOr<std::string> LorenzCurveCsv(const PropertyVector& d);

}  // namespace mdc

#endif  // MDC_CORE_EXPORT_H_
