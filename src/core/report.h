// One-call comparison of two anonymizations under the paper's framework.
//
// CompareAnonymizations extracts the privacy (and optionally utility)
// property vectors of both releases, runs a comparator battery over each
// property, and returns a structured, renderable report: the verdict of
// every comparator, the dominance relation, and the per-release bias
// statistics. This is the "downstream user" API of the library.

#ifndef MDC_CORE_REPORT_H_
#define MDC_CORE_REPORT_H_

#include <optional>
#include <string>
#include <vector>

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"
#include "common/run_context.h"
#include "core/bias.h"
#include "core/comparator.h"
#include "core/compare_engine.h"

namespace mdc {

struct ComparisonOptions {
  // Sensitive column for the diversity property; when unset the property
  // is skipped unless the schema has exactly one kSensitive attribute.
  std::optional<size_t> sensitive_column;
  // Include a per-tuple utility property. Uses the Iyengar loss metric
  // for full-domain releases and the class-spread loss otherwise.
  bool include_utility = true;
  // Rank comparator ideal: the class-size vector of the fully-linked
  // table (all N), built automatically.
  bool include_rank = true;
  // Which comparison engine scores the battery. Both engines produce
  // identical verdicts (comparison_oracle_test proves it); kPacked runs
  // the blocked single-pass kernels and can fan out across properties.
  CompareEngine engine = CompareEngine::kPacked;
  // Comparison threads for the packed engine; <= 0 means hardware.
  int threads = 1;
};

struct ComparatorVerdict {
  std::string property;    // "equivalence-class-size", "lm-utility", ...
  std::string comparator;  // "cov-better", ...
  ComparatorOutcome outcome = ComparatorOutcome::kEquivalent;
};

struct ComparisonReport {
  std::string first_name;
  std::string second_name;
  std::vector<ComparatorVerdict> verdicts;
  std::vector<std::string> properties;  // Property names compared.
  BiasReport first_bias;   // Bias of the first release's privacy vector.
  BiasReport second_bias;
  // Net score: +1 per comparator verdict for first, -1 for second.
  int net_score = 0;

  // Aligned text rendering for console output.
  std::string ToText() const;
};

// Compares two releases OF THE SAME ORIGINAL DATA SET (sizes must match).
// A report is all-or-nothing: when `run`'s budget expires mid-battery the
// budget Status is returned (a partially scored report would be
// misleading).
StatusOr<ComparisonReport> CompareAnonymizations(
    const Anonymization& first, const EquivalencePartition& first_partition,
    const Anonymization& second,
    const EquivalencePartition& second_partition,
    const ComparisonOptions& options = {}, RunContext* run = nullptr);

}  // namespace mdc

#endif  // MDC_CORE_REPORT_H_
