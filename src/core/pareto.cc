#include "core/pareto.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace mdc {
namespace {

// Strong dominance for scalar objective tuples.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  MDC_CHECK_EQ(a.size(), b.size());
  bool strict = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strict = true;
  }
  return strict;
}

// Set-level strong dominance through the packed kernels, on the vectors'
// raw storage (no per-candidate repacking). Logic mirrors dominance.cc.
bool SetStronglyDominatesPacked(const PropertySet& a, const PropertySet& b) {
  for (size_t p = 0; p < a.size(); ++p) {
    if (!PackedWeaklyDominates(a[p].values().data(), b[p].values().data(),
                               a[p].size())) {
      return false;
    }
  }
  for (size_t p = 0; p < a.size(); ++p) {
    if (PackedStronglyDominates(a[p].values().data(), b[p].values().data(),
                                a[p].size())) {
      return true;
    }
  }
  return false;
}

// Shared engine-aware front extraction: `dominates(j, i)` answers "does
// candidate j strongly dominate candidate i". Wave protocol — serial
// admission (one budget charge per candidate), parallel per-candidate
// domination checks, in-order commit with cmp.pareto.* counters.
template <typename DominatesFn>
StatusOr<std::vector<size_t>> FrontWithEngine(size_t count, int threads,
                                              RunContext* run,
                                              const DominatesFn& dominates) {
  for (size_t i = 0; i < count; ++i) {
    MDC_RETURN_IF_ERROR(RunContext::Check(run));
  }
  std::vector<uint8_t> dominated(count, 0);
  ThreadPool pool(ThreadPool::ResolveThreadCount(threads));
  pool.ParallelFor(count, [&](size_t i) {
    for (size_t j = 0; j < count; ++j) {
      if (i != j && dominates(j, i)) {
        dominated[i] = 1;
        break;
      }
    }
  });
  std::vector<size_t> front;
  for (size_t i = 0; i < count; ++i) {
    if (!dominated[i]) front.push_back(i);
  }
  MDC_METRIC_ADD("cmp.pareto.candidates", static_cast<uint64_t>(count));
  MDC_METRIC_ADD("cmp.pareto.front", static_cast<uint64_t>(front.size()));
  return front;
}

}  // namespace

std::vector<size_t> ParetoFront(const std::vector<PropertySet>& candidates) {
  std::vector<size_t> front;
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (i != j && StronglyDominates(candidates[j], candidates[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<size_t> ParetoFrontScalar(
    const std::vector<std::vector<double>>& points) {
  std::vector<size_t> front;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i != j && Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

StatusOr<std::vector<size_t>> ParetoFront(
    const std::vector<PropertySet>& candidates, const ParetoOptions& options,
    RunContext* run) {
  if (candidates.empty()) return std::vector<size_t>{};
  const PropertySet& reference = candidates[0];
  for (const PropertySet& candidate : candidates) {
    if (candidate.size() != reference.size()) {
      return Status::InvalidArgument("candidates differ in arity");
    }
    for (size_t p = 0; p < candidate.size(); ++p) {
      if (candidate[p].size() != reference[p].size()) {
        return Status::InvalidArgument(
            "aligned property vectors differ in size at position " +
            std::to_string(p));
      }
    }
  }
  const bool packed = options.engine == CompareEngine::kPacked;
  return FrontWithEngine(
      candidates.size(), options.threads, run, [&](size_t j, size_t i) {
        return packed ? SetStronglyDominatesPacked(candidates[j], candidates[i])
                      : StronglyDominates(candidates[j], candidates[i]);
      });
}

StatusOr<std::vector<size_t>> ParetoFrontScalar(
    const std::vector<std::vector<double>>& points,
    const ParetoOptions& options, RunContext* run) {
  if (points.empty()) return std::vector<size_t>{};
  for (const std::vector<double>& point : points) {
    if (point.size() != points[0].size()) {
      return Status::InvalidArgument("inconsistent point arity");
    }
  }
  const bool packed = options.engine == CompareEngine::kPacked;
  return FrontWithEngine(
      points.size(), options.threads, run, [&](size_t j, size_t i) {
        return packed ? PackedStronglyDominates(points[j].data(),
                                                points[i].data(),
                                                points[i].size())
                      : Dominates(points[j], points[i]);
      });
}

StatusOr<size_t> KneePoint(const std::vector<std::vector<double>>& points) {
  if (points.empty()) {
    return Status::InvalidArgument("empty point set");
  }
  const size_t dims = points[0].size();
  if (dims == 0) {
    return Status::InvalidArgument("zero-dimensional points");
  }
  std::vector<double> lo(dims), hi(dims);
  for (size_t d = 0; d < dims; ++d) {
    lo[d] = hi[d] = points[0][d];
  }
  for (const std::vector<double>& p : points) {
    if (p.size() != dims) {
      return Status::InvalidArgument("inconsistent point arity");
    }
    for (size_t d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  size_t best = 0;
  double best_distance = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    double distance = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      double span = hi[d] - lo[d];
      double normalized =
          span > 0.0 ? (hi[d] - points[i][d]) / span : 0.0;
      distance += normalized * normalized;
    }
    distance = std::sqrt(distance);
    if (i == 0 || distance < best_distance) {
      best = i;
      best_distance = distance;
    }
  }
  return best;
}

}  // namespace mdc
