#include "core/pareto.h"

#include <algorithm>
#include <cmath>

namespace mdc {
namespace {

// Strong dominance for scalar objective tuples.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  MDC_CHECK_EQ(a.size(), b.size());
  bool strict = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strict = true;
  }
  return strict;
}

}  // namespace

std::vector<size_t> ParetoFront(const std::vector<PropertySet>& candidates) {
  std::vector<size_t> front;
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (i != j && StronglyDominates(candidates[j], candidates[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<size_t> ParetoFrontScalar(
    const std::vector<std::vector<double>>& points) {
  std::vector<size_t> front;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i != j && Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

StatusOr<size_t> KneePoint(const std::vector<std::vector<double>>& points) {
  if (points.empty()) {
    return Status::InvalidArgument("empty point set");
  }
  const size_t dims = points[0].size();
  if (dims == 0) {
    return Status::InvalidArgument("zero-dimensional points");
  }
  std::vector<double> lo(dims), hi(dims);
  for (size_t d = 0; d < dims; ++d) {
    lo[d] = hi[d] = points[0][d];
  }
  for (const std::vector<double>& p : points) {
    if (p.size() != dims) {
      return Status::InvalidArgument("inconsistent point arity");
    }
    for (size_t d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  size_t best = 0;
  double best_distance = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    double distance = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      double span = hi[d] - lo[d];
      double normalized =
          span > 0.0 ? (hi[d] - points[i][d]) / span : 0.0;
      distance += normalized * normalized;
    }
    distance = std::sqrt(distance);
    if (i == 0 || distance < best_distance) {
      best = i;
      best_distance = distance;
    }
  }
  return best;
}

}  // namespace mdc
