// Quantifying anonymization bias (§2 of the paper).
//
// Anonymization bias is the skew of a property's per-tuple distribution:
// the same scalar privacy level can hide very uneven individual levels.
// BiasReport summarizes that unevenness — spread statistics, the fraction
// of tuples stuck at the minimum (the tuples the scalar model is "about"),
// and the Gini coefficient of the distribution (0 = perfectly even,
// 1 = maximally concentrated).

#ifndef MDC_CORE_BIAS_H_
#define MDC_CORE_BIAS_H_

#include <string>

#include "core/property_vector.h"

namespace mdc {

struct BiasReport {
  size_t size = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double range = 0.0;            // max - min.
  double fraction_at_min = 0.0;  // Tuples whose value equals the minimum.
  double gini = 0.0;             // Defined for non-negative vectors; 0 else.

  std::string ToString() const;
};

// Fails only on an empty vector (MDC_CHECK).
BiasReport ComputeBias(const PropertyVector& d);

// Gini coefficient of a non-negative vector; 0 when the sum is 0.
double GiniCoefficient(const PropertyVector& d);

}  // namespace mdc

#endif  // MDC_CORE_BIAS_H_
