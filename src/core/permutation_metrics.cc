#include "core/permutation_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "common/thread_pool.h"

namespace mdc {
namespace {

Status ValidateFinite(const std::vector<double>& values,
                      const std::string& what) {
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(what + " contains a non-finite value");
    }
  }
  return Status::Ok();
}

// Pure per-attribute model build — runs inside the wave, one slot per
// attribute, no shared state.
PermutationAttributeModel BuildAttributeModel(
    const std::vector<double>& original,
    const std::vector<double>& anonymized, const std::string& name) {
  PermutationAttributeModel model;
  model.name = name;
  model.original_ranks = RankVector(original);
  model.anonymized_ranks = RankVector(anonymized);
  const size_t n = original.size();
  // row_of_rank_X inverts the original ranks; sigma matches release ranks
  // against original ranks (the rank-linkage attack).
  std::vector<uint32_t> row_of_rank(n);
  for (size_t i = 0; i < n; ++i) {
    row_of_rank[model.original_ranks[i]] = static_cast<uint32_t>(i);
  }
  model.permutation.resize(n);
  model.rank_distance.resize(n);
  model.max_distance = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (size_t i = 0; i < n; ++i) {
    model.permutation[i] = row_of_rank[model.anonymized_ranks[i]];
    const double dist = std::abs(static_cast<double>(model.anonymized_ranks[i]) -
                                 static_cast<double>(model.original_ranks[i]));
    model.rank_distance[i] = dist;
    model.footrule += dist;
  }
  model.mean_normalized_distance =
      model.footrule / (static_cast<double>(n) * model.max_distance);
  return model;
}

}  // namespace

std::vector<uint32_t> RankVector(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), uint32_t{0});
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return values[a] < values[b];
  });
  std::vector<uint32_t> ranks(n);
  for (size_t r = 0; r < n; ++r) ranks[order[r]] = static_cast<uint32_t>(r);
  return ranks;
}

StatusOr<std::vector<uint32_t>> ImplicitPermutation(
    const std::vector<double>& original,
    const std::vector<double>& anonymized) {
  if (original.empty() || original.size() != anonymized.size()) {
    return Status::InvalidArgument(
        "implicit permutation needs two non-empty columns of equal size");
  }
  MDC_RETURN_IF_ERROR(ValidateFinite(original, "original column"));
  MDC_RETURN_IF_ERROR(ValidateFinite(anonymized, "anonymized column"));
  return BuildAttributeModel(original, anonymized, "").permutation;
}

StatusOr<PermutationModel> BuildPermutationModel(
    const std::vector<std::vector<double>>& original_columns,
    const std::vector<std::vector<double>>& anonymized_columns,
    const std::vector<std::string>& names,
    const PermutationMetricsOptions& options, RunContext* run) {
  if (original_columns.empty() ||
      original_columns.size() != anonymized_columns.size() ||
      original_columns.size() != names.size()) {
    return Status::InvalidArgument(
        "permutation model needs aligned, non-empty column/name lists");
  }
  const size_t rows = original_columns[0].size();
  if (rows == 0) {
    return Status::InvalidArgument("permutation model needs at least one row");
  }
  for (size_t a = 0; a < original_columns.size(); ++a) {
    if (original_columns[a].size() != rows ||
        anonymized_columns[a].size() != rows) {
      return Status::InvalidArgument(
          "permutation model: column " + std::to_string(a) +
          " sizes disagree");
    }
    MDC_RETURN_IF_ERROR(
        ValidateFinite(original_columns[a], "original column " + names[a]));
    MDC_RETURN_IF_ERROR(ValidateFinite(anonymized_columns[a],
                                       "anonymized column " + names[a]));
  }

  PermutationModel model;
  model.rows = rows;
  const size_t attribute_count = original_columns.size();
  std::vector<double> privacy_sum(rows, 0.0);

  ThreadPool pool(ThreadPool::ResolveThreadCount(options.threads));
  const size_t wave_size = static_cast<size_t>(pool.thread_count());
  std::vector<PermutationAttributeModel> slots;
  size_t next = 0;
  Status admit = Status::Ok();
  while (next < attribute_count) {
    // Serial admission: one charge of `rows` steps per attribute, in
    // attribute order, so a budget expires at the same attribute for
    // every thread count.
    const size_t begin = next;
    while (next < attribute_count && next - begin < wave_size) {
      admit = RunContext::Check(run, rows);
      if (!admit.ok()) break;
      ++next;
    }
    const size_t count = next - begin;
    if (count == 0) break;
    slots.assign(count, PermutationAttributeModel{});
    pool.ParallelFor(count, [&](size_t s) {
      slots[s] = BuildAttributeModel(original_columns[begin + s],
                                     anonymized_columns[begin + s],
                                     names[begin + s]);
    });
    // In-order commit: privacy sums accumulate in attribute order (FP
    // addition order fixed) and perm.* counters advance serially.
    for (size_t s = 0; s < count; ++s) {
      for (size_t i = 0; i < rows; ++i) {
        privacy_sum[i] += slots[s].rank_distance[i] / slots[s].max_distance;
      }
      MDC_METRIC_INC("perm.attributes_modeled");
      MDC_METRIC_ADD("perm.rows_ranked", rows);
      model.attributes.push_back(std::move(slots[s]));
    }
    if (!admit.ok()) break;
  }
  MDC_RETURN_IF_ERROR(admit);

  std::vector<double> privacy(rows);
  std::vector<double> utility(rows);
  for (size_t i = 0; i < rows; ++i) {
    privacy[i] = privacy_sum[i] / static_cast<double>(attribute_count);
    utility[i] = 1.0 - privacy[i];
  }
  model.privacy = PropertyVector("perm-privacy", std::move(privacy));
  model.utility = PropertyVector("perm-utility", std::move(utility));
  MDC_METRIC_INC("perm.models_built");
  return model;
}

StatusOr<std::vector<double>> NumericReleaseColumn(
    const Anonymization& anonymization,
    const EquivalencePartition* partition, size_t column) {
  const Dataset& original = *anonymization.original;
  const Dataset& release = anonymization.release;
  if (column >= original.column_count()) {
    return Status::InvalidArgument("column index out of range");
  }
  const AttributeType type = original.schema().attribute(column).type;
  if (type == AttributeType::kString) {
    return Status::InvalidArgument(
        "column '" + original.schema().attribute(column).name +
        "' is not numeric in the original schema");
  }
  const size_t rows = release.row_count();
  std::vector<double> out(rows, 0.0);
  // Class means of the ORIGINAL values, computed lazily on the first
  // generalized (string-label) cell — the reverse mapping.
  std::vector<double> class_mean;
  for (size_t r = 0; r < rows; ++r) {
    const Value& cell = release.cell(r, column);
    if (!cell.is_string()) {
      out[r] = cell.AsNumber();
      continue;
    }
    if (partition == nullptr) {
      return Status::InvalidArgument(
          "generalized release column needs an equivalence partition for "
          "reverse mapping");
    }
    if (class_mean.empty()) {
      class_mean.assign(partition->class_count(), 0.0);
      for (size_t c = 0; c < partition->class_count(); ++c) {
        ClassSpan members = partition->class_members(c);
        double sum = 0.0;
        for (size_t row : members) sum += original.cell(row, column).AsNumber();
        class_mean[c] = sum / static_cast<double>(members.size());
      }
    }
    out[r] = class_mean[partition->ClassOfRow(r)];
  }
  return out;
}

StatusOr<PermutationModel> PermutationModelFor(
    const Anonymization& anonymization,
    const EquivalencePartition* partition,
    const PermutationMetricsOptions& options, RunContext* run) {
  const Schema& schema = anonymization.original->schema();
  std::vector<std::vector<double>> original_columns;
  std::vector<std::vector<double>> anonymized_columns;
  std::vector<std::string> names;
  for (size_t qi : schema.QuasiIdentifierIndices()) {
    const AttributeType type = schema.attribute(qi).type;
    if (type != AttributeType::kInt && type != AttributeType::kReal) continue;
    MDC_ASSIGN_OR_RETURN(std::vector<double> released,
                         NumericReleaseColumn(anonymization, partition, qi));
    std::vector<double> originals(anonymization.original->row_count());
    for (size_t r = 0; r < originals.size(); ++r) {
      originals[r] = anonymization.original->cell(r, qi).AsNumber();
    }
    original_columns.push_back(std::move(originals));
    anonymized_columns.push_back(std::move(released));
    names.push_back(schema.attribute(qi).name);
  }
  if (original_columns.empty()) {
    return Status::InvalidArgument(
        "permutation model needs at least one numeric quasi-identifier "
        "column");
  }
  return BuildPermutationModel(original_columns, anonymized_columns, names,
                               options, run);
}

std::string PermutationModelSummary(const PermutationModel& model) {
  TextTable table;
  table.SetHeader({"attribute", "footrule", "mean_disp", "max_disp"});
  for (const PermutationAttributeModel& attribute : model.attributes) {
    double max_disp = 0.0;
    for (double d : attribute.rank_distance) max_disp = std::max(max_disp, d);
    table.AddRow({attribute.name, FormatDouble(attribute.footrule, 4),
                  FormatDouble(attribute.mean_normalized_distance, 4),
                  FormatDouble(max_disp / attribute.max_distance, 4)});
  }
  std::string out = "permutation model: N=" + std::to_string(model.rows) +
                    " attributes=" + std::to_string(model.attributes.size()) +
                    "\n" + table.Render();
  out += "mean privacy (normalized rank displacement) = " +
         FormatDouble(model.privacy.Mean(), 4) + "\n";
  out += "mean utility (1 - displacement)             = " +
         FormatDouble(model.utility.Mean(), 4) + "\n";
  return out;
}

}  // namespace mdc
