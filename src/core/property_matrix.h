// Packed r × N property matrix — the comparison engine's input layout.
//
// A PropertyMatrix holds r property vectors of a common length N in one
// contiguous structure-of-arrays buffer (row-major: row i's N entries are
// adjacent), so the pairwise comparison kernels (core/compare_engine.h)
// stream cache lines instead of chasing per-vector allocations and paying
// a bounds check per element. Entries are required to be finite: NaN/inf
// would make the §5 indices (coverage counts, spread sums) ill-defined,
// so both construction paths reject them up front with a clean Status
// instead of letting poison propagate into comparator verdicts.
//
// Storage is cache-line aligned and rows are padded to a 64-byte stride,
// so every row(r) pointer starts a cache line and full-width vector
// loads in the comparison kernels never split lines. The padding lanes
// are zero-filled and outside the [0, cols()) extent the kernels read.

#ifndef MDC_CORE_PROPERTY_MATRIX_H_
#define MDC_CORE_PROPERTY_MATRIX_H_

#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/run_context.h"
#include "common/status.h"
#include "core/dominance.h"

namespace mdc {

class PropertyMatrix {
 public:
  PropertyMatrix() = default;

  // Packs an aligned PropertySet. Fails on an empty set, empty vectors,
  // size mismatches across the r set, or non-finite entries.
  static StatusOr<PropertyMatrix> FromSet(const PropertySet& set);

  // Ingests CSV rows of the form "name,v1,v2,...,vN" (one property vector
  // per row). Fails on malformed CSV, rows with no values, ragged rows
  // (mismatched N across the r set), non-numeric cells, and NaN/inf.
  // `run` bounds the ingestion (one step charged per row); the `cmp.read`
  // failpoint injects read faults for error-path tests.
  static StatusOr<PropertyMatrix> FromCsv(const std::string& csv,
                                          RunContext* run = nullptr);

  size_t rows() const { return names_.size(); }
  size_t cols() const { return cols_; }
  bool empty() const { return names_.empty(); }

  // Contiguous cols() entries of row r; always 64-byte aligned.
  const double* row(size_t r) const {
    MDC_CHECK_LT(r, rows());
    return data_.data() + r * stride_;
  }

  // Doubles between consecutive row starts (cols() padded to a cache
  // line); exposed for the alignment contract test.
  size_t stride() const { return stride_; }
  double at(size_t r, size_t c) const {
    MDC_CHECK_LT(c, cols_);
    return row(r)[c];
  }
  const std::string& name(size_t r) const {
    MDC_CHECK_LT(r, rows());
    return names_[r];
  }

  // Unpacked copies, for interop with the scalar comparator layer.
  PropertyVector ToVector(size_t r) const;
  PropertySet ToSet() const;

  // Inverse of FromCsv (modulo real-number formatting).
  std::string ToCsv() const;

 private:
  // Repacks dense row-major `data` (rows × cols) into the padded,
  // aligned layout.
  PropertyMatrix(size_t cols, std::vector<std::string> names,
                 std::vector<double> data);

  size_t cols_ = 0;
  size_t stride_ = 0;
  std::vector<std::string> names_;
  AlignedVector<double> data_;  // rows() × stride_, row-major.
};

}  // namespace mdc

#endif  // MDC_CORE_PROPERTY_MATRIX_H_
