// Property vectors — Definition 1 of the paper.
//
// A property vector D for a data set of size N is an N-dimensional real
// vector whose i-th entry measures some property (privacy, utility, ...)
// of the i-th tuple of an anonymized data set. Property vectors are the
// paper's replacement for scalar privacy levels: they expose the
// anonymization bias that aggregates like min() hide.
//
// Convention (paper §5): a HIGHER entry is better. Extractors for
// loss-like quantities either negate or invert and say so in their names.

#ifndef MDC_CORE_PROPERTY_VECTOR_H_
#define MDC_CORE_PROPERTY_VECTOR_H_

#include <string>
#include <vector>

#include "common/check.h"

namespace mdc {

class PropertyVector {
 public:
  PropertyVector() = default;
  PropertyVector(std::string name, std::vector<double> values)
      : name_(std::move(name)), values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }

  double operator[](size_t i) const {
    MDC_CHECK_LT(i, values_.size());
    return values_[i];
  }

  // Aggregates (each MDC_CHECKs against emptiness where undefined).
  double Min() const;
  double Max() const;
  double Sum() const;
  double Mean() const;
  double StdDev() const;  // Population standard deviation.

  // Lp distance to `other` (p >= 1); p defaults to Euclidean. Sizes must
  // match. p = infinity is supported via LInfDistance.
  double DistanceTo(const PropertyVector& other, double p = 2.0) const;
  double LInfDistance(const PropertyVector& other) const;

  // Entry-wise negation, for flipping a lower-is-better measurement into
  // the paper's higher-is-better convention.
  PropertyVector Negated(std::string new_name) const;

  // "(3, 3, 4, ...)" — matches how the paper prints vectors.
  std::string ToString() const;

  friend bool operator==(const PropertyVector& a, const PropertyVector& b) {
    return a.values_ == b.values_;
  }

 private:
  std::string name_;
  std::vector<double> values_;
};

}  // namespace mdc

#endif  // MDC_CORE_PROPERTY_VECTOR_H_
