#include "core/insufficiency.h"

#include "common/strings.h"
#include "core/compare_engine.h"
#include "core/dominance.h"

namespace mdc {
namespace {

std::vector<double> Evaluate(const std::vector<UnaryIndex>& battery,
                             const PropertyVector& d) {
  std::vector<double> values;
  values.reserve(battery.size());
  for (const UnaryIndex& index : battery) values.push_back(index.fn(d));
  return values;
}

// True iff every index value of `a` is >= the corresponding value of `b`.
bool IndexGe(const std::vector<double>& a, const std::vector<double>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

// Checks both directions of the equivalence on the pair; fills the witness
// and returns true when a violation is found.
bool CheckPair(const std::vector<UnaryIndex>& battery,
               const PropertyVector& d1, const PropertyVector& d2,
               InsufficiencyWitness& witness) {
  std::vector<double> v1 = Evaluate(battery, d1);
  std::vector<double> v2 = Evaluate(battery, d2);
  bool idx_ge_12 = IndexGe(v1, v2);
  bool idx_ge_21 = IndexGe(v2, v1);
  // Packed kernels: the counterexample search probes many large-N pairs,
  // and only needs the boolean relation (identical to WeaklyDominates).
  MDC_CHECK_EQ(d1.size(), d2.size());
  bool dom_12 =
      PackedWeaklyDominates(d1.values().data(), d2.values().data(), d1.size());
  bool dom_21 =
      PackedWeaklyDominates(d2.values().data(), d1.values().data(), d1.size());

  std::string explanation;
  if (idx_ge_12 && !dom_12) {
    explanation = "all indices rate D1 >= D2 but D1 does not weakly "
                  "dominate D2";
  } else if (idx_ge_21 && !dom_21) {
    explanation = "all indices rate D2 >= D1 but D2 does not weakly "
                  "dominate D1";
  } else if (dom_12 && !idx_ge_12) {
    explanation = "D1 weakly dominates D2 but some index rates D1 below D2";
  } else if (dom_21 && !idx_ge_21) {
    explanation = "D2 weakly dominates D1 but some index rates D2 below D1";
  } else {
    return false;
  }
  witness.found = true;
  witness.d1 = d1;
  witness.d2 = d2;
  witness.index_values_1 = std::move(v1);
  witness.index_values_2 = std::move(v2);
  witness.explanation = std::move(explanation);
  return true;
}

}  // namespace

InsufficiencyWitness SwapCounterexample(
    const std::vector<UnaryIndex>& battery, size_t n, double a, double b,
    double fill) {
  MDC_CHECK_GE(n, 2u);
  MDC_CHECK_LT(a, b);
  std::vector<double> values1(n, fill);
  std::vector<double> values2(n, fill);
  values1[0] = a;
  values1[1] = b;
  values2[0] = b;
  values2[1] = a;
  PropertyVector d1("swap-1", std::move(values1));
  PropertyVector d2("swap-2", std::move(values2));
  InsufficiencyWitness witness;
  CheckPair(battery, d1, d2, witness);
  return witness;
}

InsufficiencyWitness FindEquivalenceViolation(
    const std::vector<UnaryIndex>& battery, size_t n, Rng& rng,
    int max_trials, int value_range) {
  MDC_CHECK_GE(n, 1u);
  MDC_CHECK_GE(value_range, 1);
  InsufficiencyWitness witness;
  for (int trial = 0; trial < max_trials; ++trial) {
    std::vector<double> values1(n);
    std::vector<double> values2(n);
    for (size_t i = 0; i < n; ++i) {
      values1[i] = static_cast<double>(rng.NextInt(1, value_range));
      values2[i] = static_cast<double>(rng.NextInt(1, value_range));
    }
    PropertyVector d1("random-1", std::move(values1));
    PropertyVector d2("random-2", std::move(values2));
    if (CheckPair(battery, d1, d2, witness)) return witness;
  }
  return witness;
}

}  // namespace mdc
