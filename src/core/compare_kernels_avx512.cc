// AVX-512 (8 × f64) variants of the comparison primitives. Compiled
// with -mavx512f -mavx512dq -mavx512vl -mavx512bw for this file only;
// see compare_kernels.h for the bit-exactness arguments.

#include <immintrin.h>

#include <algorithm>

#include "core/compare_kernels.h"

namespace mdc {
namespace {

// Compress-then-sum spread accumulation. Phase A is fully parallel and
// branchless: per 8-lane vector it computes both strict-count masks
// (popcount-accumulated), both addend vectors max_pd(0, diff) — which
// reproduces std::max(diff, 0.0) bitwise, including NaN propagation —
// and vcompresspd-packs the live addends (NEQ_UQ: positive or NaN, i.e.
// everything except exact ±0.0) into a dense chunk buffer, preserving
// index order within and across vectors. Phase B then runs the serial
// FP chain over live addends only. Dropping the ±0.0 addends is the
// zero-skip identity of compare_kernels.h, so the chain is bit-identical
// to scalar while typically half as long — and the chain's 4-cycle add
// latency is the kernel's critical path.
void CountSpreadAvx512(const double* a, const double* b, size_t n,
                       uint64_t* gt12, uint64_t* gt21, double* spr12,
                       double* spr21) {
  const __m512d zero = _mm512_setzero_pd();
  uint64_t c12 = 0, c21 = 0;
  double s12 = *spr12, s21 = *spr21;
  // Chunked so the buffers live in L1 regardless of n; +8 slack because
  // the compress store always writes a full vector's worth of lanes.
  constexpr size_t kChunk = 512;
  alignas(64) double buf12[kChunk + 8];
  alignas(64) double buf21[kChunk + 8];
  size_t i = 0;
  while (i < n) {
    const size_t chunk_end = std::min(n, i + kChunk);
    size_t len12 = 0, len21 = 0;
    for (; i + 8 <= chunk_end; i += 8) {
      // The engine streams rows far larger than LLC through this kernel;
      // at 8 doubles per line this issues one prefetch per line consumed
      // per stream, far enough ahead (4 KiB) to cover DRAM latency.
      // Prefetching past n is safe (prefetch never faults) and cheap.
      _mm_prefetch(reinterpret_cast<const char*>(a + i + 512), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(b + i + 512), _MM_HINT_T0);
      __m512d va = _mm512_loadu_pd(a + i);
      __m512d vb = _mm512_loadu_pd(b + i);
      c12 += static_cast<unsigned>(
          __builtin_popcount(_mm512_cmp_pd_mask(va, vb, _CMP_GT_OQ)));
      c21 += static_cast<unsigned>(
          __builtin_popcount(_mm512_cmp_pd_mask(vb, va, _CMP_GT_OQ)));
      __m512d m12 = _mm512_max_pd(zero, _mm512_sub_pd(va, vb));
      __m512d m21 = _mm512_max_pd(zero, _mm512_sub_pd(vb, va));
      __mmask8 k12 = _mm512_cmp_pd_mask(m12, zero, _CMP_NEQ_UQ);
      __mmask8 k21 = _mm512_cmp_pd_mask(m21, zero, _CMP_NEQ_UQ);
      _mm512_storeu_pd(buf12 + len12, _mm512_maskz_compress_pd(k12, m12));
      len12 += static_cast<unsigned>(__builtin_popcount(k12));
      _mm512_storeu_pd(buf21 + len21, _mm512_maskz_compress_pd(k21, m21));
      len21 += static_cast<unsigned>(__builtin_popcount(k21));
    }
    for (size_t l = 0; l < len12; ++l) s12 += buf12[l];
    for (size_t l = 0; l < len21; ++l) s21 += buf21[l];
    // Chunk tail (only in the final chunk): after the buffered adds, so
    // index order is preserved.
    for (; i < chunk_end; ++i) {
      c12 += a[i] > b[i] ? 1u : 0u;
      c21 += b[i] > a[i] ? 1u : 0u;
      s12 += std::max(a[i] - b[i], 0.0);
      s21 += std::max(b[i] - a[i], 0.0);
    }
  }
  *gt12 += c12;
  *gt21 += c21;
  *spr12 = s12;
  *spr21 = s21;
}

double RowMinAvx512(const double* d, size_t n, double init) {
  double min_value = init;
  size_t i = 0;
  if (n >= 8) {
    __m512d acc = _mm512_set1_pd(init);
    for (; i + 8 <= n; i += 8) {
      acc = _mm512_min_pd(acc, _mm512_loadu_pd(d + i));
    }
    min_value = std::min(min_value, _mm512_reduce_min_pd(acc));
  }
  for (; i < n; ++i) min_value = std::min(min_value, d[i]);
  // Recover the scalar path's first-occurrence bit pattern when the
  // minimum is a zero (the only finite value with two encodings).
  if (min_value == 0.0) {
    if (init == 0.0) return init;
    for (size_t j = 0; j < n; ++j) {
      if (d[j] == 0.0) return d[j];
    }
  }
  return min_value;
}

bool WeaklyDominatesAvx512(const double* a, const double* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d va = _mm512_loadu_pd(a + i);
    __m512d vb = _mm512_loadu_pd(b + i);
    if (_mm512_cmp_pd_mask(va, vb, _CMP_LT_OQ)) return false;
  }
  if (i < n) {
    __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    __m512d va = _mm512_maskz_loadu_pd(tail, a + i);
    __m512d vb = _mm512_maskz_loadu_pd(tail, b + i);
    if (_mm512_cmp_pd_mask(va, vb, _CMP_LT_OQ)) return false;
  }
  return true;
}

void StrictFlagsAvx512(const double* a, const double* b, size_t n,
                       bool* any12, bool* any21) {
  bool f12 = false, f21 = false;
  size_t i = 0;
  for (; i + 8 <= n && !(f12 && f21); i += 8) {
    __m512d va = _mm512_loadu_pd(a + i);
    __m512d vb = _mm512_loadu_pd(b + i);
    f12 |= _mm512_cmp_pd_mask(va, vb, _CMP_GT_OQ) != 0;
    f21 |= _mm512_cmp_pd_mask(vb, va, _CMP_GT_OQ) != 0;
  }
  if (i < n && !(f12 && f21)) {
    __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    __m512d va = _mm512_maskz_loadu_pd(tail, a + i);
    __m512d vb = _mm512_maskz_loadu_pd(tail, b + i);
    f12 |= _mm512_cmp_pd_mask(va, vb, _CMP_GT_OQ) != 0;
    f21 |= _mm512_cmp_pd_mask(vb, va, _CMP_GT_OQ) != 0;
  }
  *any12 = f12;
  *any21 = f21;
}

}  // namespace

const CompareKernels kCompareKernelsAvx512 = {
    CountSpreadAvx512, RowMinAvx512, WeaklyDominatesAvx512,
    StrictFlagsAvx512,
};

}  // namespace mdc
