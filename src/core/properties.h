// Property extractors: from an anonymized release to the paper's property
// vectors (Definition 1).
//
// Each extractor measures one property per tuple:
//  - EquivalenceClassSizeVector: the size of the tuple's equivalence class
//    (the k-anonymity property; Figure 1 of the paper plots exactly this).
//  - SensitiveCountVector: how often the tuple's sensitive value appears
//    within its class (the ℓ-diversity property of §3; for T3a this is
//    (2,2,1,2,2,1,2,1,2,1)).
//  - BreachProbabilityVector: 1/|class| per tuple — the re-identification
//    probability of §1 (lower is better).
//  - LinkagePrivacyVector: 1 - 1/|class| — the same information oriented
//    higher-is-better.
//
// Utility property vectors come from utility/ (LossMetric::PerTupleUtility
// and friends).

#ifndef MDC_CORE_PROPERTIES_H_
#define MDC_CORE_PROPERTIES_H_

#include <optional>

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"
#include "core/property_vector.h"

namespace mdc {

PropertyVector EquivalenceClassSizeVector(
    const EquivalencePartition& partition);

// Fails if no sensitive column can be resolved.
StatusOr<PropertyVector> SensitiveCountVector(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    std::optional<size_t> sensitive_column = std::nullopt);

PropertyVector BreachProbabilityVector(const EquivalencePartition& partition);

PropertyVector LinkagePrivacyVector(const EquivalencePartition& partition);

}  // namespace mdc

#endif  // MDC_CORE_PROPERTIES_H_
