#include "core/property_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/strings.h"

namespace mdc {
namespace {

constexpr size_t kRowAlignDoubles = kCacheLineBytes / sizeof(double);

}  // namespace

PropertyMatrix::PropertyMatrix(size_t cols, std::vector<std::string> names,
                               std::vector<double> data)
    : cols_(cols),
      stride_((cols + kRowAlignDoubles - 1) / kRowAlignDoubles *
              kRowAlignDoubles),
      names_(std::move(names)) {
  const size_t row_count = names_.size();
  data_.assign(row_count * stride_, 0.0);
  for (size_t r = 0; r < row_count; ++r) {
    std::copy(data.begin() + static_cast<ptrdiff_t>(r * cols_),
              data.begin() + static_cast<ptrdiff_t>((r + 1) * cols_),
              data_.begin() + static_cast<ptrdiff_t>(r * stride_));
  }
}

StatusOr<PropertyMatrix> PropertyMatrix::FromSet(const PropertySet& set) {
  if (set.empty()) {
    return Status::InvalidArgument("property set is empty");
  }
  const size_t cols = set[0].size();
  if (cols == 0) {
    return Status::InvalidArgument("property vectors are empty");
  }
  std::vector<std::string> names;
  names.reserve(set.size());
  std::vector<double> data;
  data.reserve(set.size() * cols);
  for (size_t r = 0; r < set.size(); ++r) {
    const PropertyVector& vector = set[r];
    if (vector.size() != cols) {
      return Status::InvalidArgument(
          "property vector '" + vector.name() + "' has " +
          std::to_string(vector.size()) + " entries, expected " +
          std::to_string(cols));
    }
    for (double value : vector.values()) {
      if (!std::isfinite(value)) {
        return Status::InvalidArgument("property vector '" + vector.name() +
                                       "' contains a non-finite entry");
      }
    }
    names.push_back(vector.name());
    data.insert(data.end(), vector.values().begin(), vector.values().end());
  }
  return PropertyMatrix(cols, std::move(names), std::move(data));
}

StatusOr<PropertyMatrix> PropertyMatrix::FromCsv(const std::string& csv,
                                                 RunContext* run) {
  MDC_FAILPOINT("cmp.read");
  size_t cols = 0;
  std::vector<std::string> names;
  std::vector<double> data;
  size_t line_number = 0;
  for (std::string_view line : StrSplit(csv, '\n')) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;  // Blank/trailing lines.
    MDC_RETURN_IF_ERROR(RunContext::Check(run));
    std::vector<std::string> cells = StrSplit(line, ',');
    if (cells.size() < 2) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": expected \"name,v1,...\" with at least one value");
    }
    std::string name(StripWhitespace(cells[0]));
    if (name.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": empty property name");
    }
    const size_t row_cols = cells.size() - 1;
    if (cols == 0) {
      cols = row_cols;
    } else if (row_cols != cols) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": row has " +
          std::to_string(row_cols) + " values, expected " +
          std::to_string(cols));
    }
    for (size_t c = 1; c < cells.size(); ++c) {
      std::optional<double> value = ParseDouble(StripWhitespace(cells[c]));
      if (!value.has_value()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": cell '" + cells[c] +
            "' is not a number");
      }
      if (!std::isfinite(*value)) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": non-finite value '" + cells[c] +
                                       "'");
      }
      data.push_back(*value);
    }
    names.push_back(std::move(name));
  }
  if (names.empty()) {
    return Status::InvalidArgument("CSV contains no property rows");
  }
  return PropertyMatrix(cols, std::move(names), std::move(data));
}

PropertyVector PropertyMatrix::ToVector(size_t r) const {
  const double* begin = row(r);
  return PropertyVector(names_[r],
                        std::vector<double>(begin, begin + cols_));
}

PropertySet PropertyMatrix::ToSet() const {
  PropertySet set;
  set.reserve(rows());
  for (size_t r = 0; r < rows(); ++r) set.push_back(ToVector(r));
  return set;
}

std::string PropertyMatrix::ToCsv() const {
  std::string out;
  for (size_t r = 0; r < rows(); ++r) {
    out += names_[r];
    const double* values = row(r);
    for (size_t c = 0; c < cols_; ++c) {
      out += ',';
      out += FormatCompact(values[c], 17);
    }
    out += '\n';
  }
  return out;
}

}  // namespace mdc
