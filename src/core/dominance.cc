#include "core/dominance.h"

namespace mdc {

const char* DominanceRelationName(DominanceRelation relation) {
  switch (relation) {
    case DominanceRelation::kEqual:
      return "equal";
    case DominanceRelation::kFirstDominates:
      return "first strongly dominates";
    case DominanceRelation::kSecondDominates:
      return "second strongly dominates";
    case DominanceRelation::kIncomparable:
      return "incomparable";
  }
  return "unknown";
}

bool WeaklyDominates(const PropertyVector& d1, const PropertyVector& d2) {
  MDC_CHECK_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    if (d1[i] < d2[i]) return false;
  }
  return true;
}

bool StronglyDominates(const PropertyVector& d1, const PropertyVector& d2) {
  MDC_CHECK_EQ(d1.size(), d2.size());
  bool strict = false;
  for (size_t i = 0; i < d1.size(); ++i) {
    if (d1[i] < d2[i]) return false;
    if (d1[i] > d2[i]) strict = true;
  }
  return strict;
}

bool NonDominated(const PropertyVector& d1, const PropertyVector& d2) {
  MDC_CHECK_EQ(d1.size(), d2.size());
  bool first_better = false;
  bool second_better = false;
  for (size_t i = 0; i < d1.size(); ++i) {
    if (d1[i] > d2[i]) first_better = true;
    if (d1[i] < d2[i]) second_better = true;
  }
  return first_better && second_better;
}

DominanceRelation CompareDominance(const PropertyVector& d1,
                                   const PropertyVector& d2) {
  MDC_CHECK_EQ(d1.size(), d2.size());
  bool first_better = false;
  bool second_better = false;
  for (size_t i = 0; i < d1.size(); ++i) {
    if (d1[i] > d2[i]) first_better = true;
    if (d1[i] < d2[i]) second_better = true;
  }
  if (first_better && second_better) return DominanceRelation::kIncomparable;
  if (first_better) return DominanceRelation::kFirstDominates;
  if (second_better) return DominanceRelation::kSecondDominates;
  return DominanceRelation::kEqual;
}

bool WeaklyDominates(const PropertySet& s1, const PropertySet& s2) {
  MDC_CHECK_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    if (!WeaklyDominates(s1[i], s2[i])) return false;
  }
  return true;
}

bool StronglyDominates(const PropertySet& s1, const PropertySet& s2) {
  MDC_CHECK_EQ(s1.size(), s2.size());
  if (!WeaklyDominates(s1, s2)) return false;
  for (size_t i = 0; i < s1.size(); ++i) {
    if (StronglyDominates(s1[i], s2[i])) return true;
  }
  return false;
}

bool NonDominated(const PropertySet& s1, const PropertySet& s2) {
  MDC_CHECK_EQ(s1.size(), s2.size());
  bool first_better = false;
  bool second_better = false;
  for (size_t i = 0; i < s1.size(); ++i) {
    if (StronglyDominates(s1[i], s2[i])) first_better = true;
    if (StronglyDominates(s2[i], s1[i])) second_better = true;
  }
  return first_better && second_better;
}

DominanceRelation CompareDominance(const PropertySet& s1,
                                   const PropertySet& s2) {
  if (StronglyDominates(s1, s2)) return DominanceRelation::kFirstDominates;
  if (StronglyDominates(s2, s1)) return DominanceRelation::kSecondDominates;
  if (NonDominated(s1, s2)) return DominanceRelation::kIncomparable;
  if (WeaklyDominates(s1, s2) && WeaklyDominates(s2, s1)) {
    return DominanceRelation::kEqual;
  }
  return DominanceRelation::kIncomparable;
}

}  // namespace mdc
