#include "core/r_property.h"

#include "core/properties.h"
#include "utility/loss_metric.h"

namespace mdc {

StatusOr<PropertySet> InduceProperties(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    const std::vector<PropertyExtractor>& extractors) {
  if (extractors.empty()) {
    return Status::InvalidArgument("no property extractors given");
  }
  PropertySet properties;
  properties.reserve(extractors.size());
  for (const PropertyExtractor& extractor : extractors) {
    MDC_ASSIGN_OR_RETURN(PropertyVector vector,
                         extractor.fn(anonymization, partition));
    if (vector.size() != anonymization.row_count()) {
      return Status::Internal("extractor '" + extractor.name +
                              "' produced a wrong-sized vector");
    }
    properties.push_back(std::move(vector));
  }
  return properties;
}

PropertyExtractor ClassSizeExtractor() {
  return {"equivalence-class-size",
          [](const Anonymization&, const EquivalencePartition& partition)
              -> StatusOr<PropertyVector> {
            return EquivalenceClassSizeVector(partition);
          }};
}

PropertyExtractor LinkagePrivacyExtractor() {
  return {"linkage-privacy",
          [](const Anonymization&, const EquivalencePartition& partition)
              -> StatusOr<PropertyVector> {
            return LinkagePrivacyVector(partition);
          }};
}

PropertyExtractor SensitiveRarityExtractor(
    std::optional<size_t> sensitive_column) {
  return {"sensitive-rarity",
          [sensitive_column](const Anonymization& anonymization,
                             const EquivalencePartition& partition)
              -> StatusOr<PropertyVector> {
            MDC_ASSIGN_OR_RETURN(
                PropertyVector counts,
                SensitiveCountVector(anonymization, partition,
                                     sensitive_column));
            return counts.Negated("sensitive-rarity");
          }};
}

PropertyExtractor UtilityExtractor() {
  return {"utility",
          [](const Anonymization& anonymization,
             const EquivalencePartition& partition)
              -> StatusOr<PropertyVector> {
            if (anonymization.scheme.has_value()) {
              return LossMetric::PerTupleUtility(anonymization);
            }
            return ClassSpreadLoss::PerTupleUtility(anonymization,
                                                    partition);
          }};
}

std::vector<PropertyExtractor> StandardExtractors(
    std::optional<size_t> sensitive_column) {
  return {ClassSizeExtractor(), SensitiveRarityExtractor(sensitive_column),
          UtilityExtractor()};
}

}  // namespace mdc
