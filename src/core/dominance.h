// Strict (dominance-based) comparators — Table 4 of the paper.
//
// For property vectors (higher is better):
//   weak dominance   D1 ⪰ D2 : ∀i d1_i >= d2_i            ("not worse than")
//   strong dominance D1 ≻ D2 : D1 ⪰ D2 and ∃j d1_j > d2_j ("better than")
//   non-dominance    D1 ∥ D2 : ∃i d1_i < d2_i and ∃j d1_j > d2_j
//
// For sets of property vectors (r-property anonymizations, aligned by
// property index): Υ1 ⪰ Υ2 iff every aligned pair weakly dominates;
// Υ1 ≻ Υ2 iff additionally some aligned pair strongly dominates;
// Υ1 ∥ Υ2 iff some pair strongly dominates one way and some pair the other.

#ifndef MDC_CORE_DOMINANCE_H_
#define MDC_CORE_DOMINANCE_H_

#include <string>
#include <vector>

#include "core/property_vector.h"

namespace mdc {

// Aligned set of property vectors induced by an r-property anonymization
// (Definition 2's Υ).
using PropertySet = std::vector<PropertyVector>;

enum class DominanceRelation {
  kEqual,            // Identical entries everywhere.
  kFirstDominates,   // D1 ≻ D2.
  kSecondDominates,  // D2 ≻ D1.
  kIncomparable,     // D1 ∥ D2.
};

const char* DominanceRelationName(DominanceRelation relation);

// Vector-level comparators. Sizes must match (MDC_CHECK).
bool WeaklyDominates(const PropertyVector& d1, const PropertyVector& d2);
bool StronglyDominates(const PropertyVector& d1, const PropertyVector& d2);
bool NonDominated(const PropertyVector& d1, const PropertyVector& d2);
DominanceRelation CompareDominance(const PropertyVector& d1,
                                   const PropertyVector& d2);

// Set-level comparators (Table 4, middle column). Arities must match.
bool WeaklyDominates(const PropertySet& s1, const PropertySet& s2);
bool StronglyDominates(const PropertySet& s1, const PropertySet& s2);
bool NonDominated(const PropertySet& s1, const PropertySet& s2);
DominanceRelation CompareDominance(const PropertySet& s1,
                                   const PropertySet& s2);

}  // namespace mdc

#endif  // MDC_CORE_DOMINANCE_H_
