// High-throughput pairwise comparison engine over packed property
// matrices.
//
// The scalar layer (core/{dominance,quality_index,comparator}.*) computes
// each Table-4 relation and each §5 index with its own pass over
// PropertyVector::operator[], so comparing r properties costs O(r²·N) of
// bounds-checked, virtually-dispatched element work. The packed engine
// streams the two rows once per pair in cache-sized blocks and derives
// every dominance relation and every index from a single fused pass
// (ComputePairwiseStats).
//
// Bit-exactness contract: packed results are required to equal the scalar
// results EXACTLY (double ==), not approximately. Integer quantities
// (coverage/strict counts, dominance flags) are order-free; floating-point
// accumulations (spread sums, hypervolume products, rank distances) are
// carried across blocks in the same index order 0..N-1 the scalar code
// uses, and the build does not enable fast-math, so the compiler preserves
// that order. comparison_oracle_test.cc enforces the contract
// differentially.
//
// Determinism contract (same as the PR 3 searches): AllPairsCompare
// admits pairs serially in row-major (i, j) order — charging RunContext
// steps so a budget expires at the same pair for every thread count —
// evaluates admitted waves in parallel into per-pair slots, and commits
// results and `cmp.*` metrics counters serially in admission order.
// Results and DeterministicCountersText() are byte-identical for any
// thread count, including under step-budget truncation.

#ifndef MDC_CORE_COMPARE_ENGINE_H_
#define MDC_CORE_COMPARE_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/comparator.h"
#include "core/dominance.h"
#include "core/property_matrix.h"

namespace mdc {

// Which implementation services a comparison request. kScalar routes
// through the legacy per-element code (the differential oracle); kPacked
// uses the blocked kernels. Both produce identical results.
enum class CompareEngine { kScalar, kPacked };

const char* CompareEngineName(CompareEngine engine);
StatusOr<CompareEngine> ParseCompareEngine(const std::string& name);

// Default kernel block: 1024 doubles per row = 2 × 8 KiB resident per
// pair, comfortably inside a 32–48 KiB L1 while long enough to amortize
// loop overhead. Tests override it to exercise N % block != 0 remainders.
inline constexpr size_t kCompareBlockSize = 1024;

// ---------------------------------------------------------------------------
// Raw kernels (packed path). Semantics match core/dominance.h and
// core/quality_index.h exactly; see the bit-exactness contract above.

bool PackedWeaklyDominates(const double* d1, const double* d2, size_t n);
bool PackedStronglyDominates(const double* d1, const double* d2, size_t n);
bool PackedNonDominated(const double* d1, const double* d2, size_t n);
DominanceRelation PackedCompareDominance(const double* d1, const double* d2,
                                         size_t n);

// P_rank: Lp distance to the ideal, identical to
// PropertyVector::DistanceTo (same per-element std::pow chain).
double PackedRankIndex(const double* d, const double* d_max, size_t n,
                       double p = 2.0);

// Everything a pair comparison needs, from one fused blocked pass.
struct PairwiseStats {
  uint64_t ge12 = 0;  // |{i : d1[i] >= d2[i]}|  (P_cov numerator, 1 vs 2)
  uint64_t ge21 = 0;
  uint64_t gt12 = 0;  // |{i : d1[i] > d2[i]}|   (P_binary, 1 vs 2)
  uint64_t gt21 = 0;
  double spr12 = 0.0;  // Σ max(d1[i] - d2[i], 0)  (P_spr, 1 vs 2)
  double spr21 = 0.0;
  double min1 = 0.0;  // min over d1 / d2 (first-occurrence semantics).
  double min2 = 0.0;
  bool with_hv = false;  // hv fields valid only when requested.
  double hv12 = 0.0;     // P_hv(d1, d2) = Π d1 − Π min(d1, d2)
  double hv21 = 0.0;
};

// `with_hv` requires strictly positive entries in both rows (scalar
// semantics; callers validate — the kernel MDC_CHECKs). Both rows must be
// finite (the PropertyMatrix contract): the weak counts are derived from
// the strict ones by totality (d1 >= d2 ⟺ ¬(d2 > d1)), which halves the
// count work per element. `with_min = false` skips the running-min pass
// for callers that precompute per-row minima (minima depend on one row
// only, so the all-pairs driver hoists them out of the O(r²) pair loop);
// min1/min2 are then left at d1[0]/d2[0].
PairwiseStats ComputePairwiseStats(const double* d1, const double* d2,
                                   size_t n, bool with_hv,
                                   size_t block = kCompareBlockSize,
                                   bool with_min = true);

// Derivations from the fused stats. Each mirrors its scalar counterpart.
DominanceRelation RelationFromStats(const PairwiseStats& stats);
double CoverageFromStats(const PairwiseStats& stats, size_t n,
                         bool forward);  // forward: P_cov(d1, d2)

// Scalar-outcome helper with the exact tie/epsilon logic of the
// comparator battery (comparator.cc FromScalars).
ComparatorOutcome OutcomeFromScalars(double first, double second,
                                     double epsilon = 0.0);

// Increments the deterministic cmp.* counters for one committed pair
// comparison. Must be called from a serial commit point only (the
// counters' thread-count invariance depends on it).
void CommitComparisonMetrics(DominanceRelation relation, size_t cols);

// ---------------------------------------------------------------------------
// All-pairs driver.

struct AllPairsOptions {
  CompareEngine engine = CompareEngine::kPacked;
  // Total comparison threads (workers + caller); <= 0 means hardware.
  int threads = 1;
  // Compute P_hv. Requires strictly positive matrix entries (clean
  // InvalidArgument otherwise — on either engine).
  bool include_hypervolume = false;
  // Rank ideal; empty skips P_rank. Must match the matrix width.
  PropertyVector d_max;
  double rank_p = 2.0;
  // Kernel block size; kept configurable so tests can force remainder
  // blocks. Must be > 0.
  size_t block = kCompareBlockSize;
};

// One ordered pair (first < second, row-major order).
struct PairComparison {
  size_t first = 0;
  size_t second = 0;
  DominanceRelation relation = DominanceRelation::kEqual;
  double cov12 = 0.0;  // P_cov(first, second)
  double cov21 = 0.0;
  uint64_t binary12 = 0;  // P_binary: strictly-better counts.
  uint64_t binary21 = 0;
  double spr12 = 0.0;  // P_spr(first, second)
  double spr21 = 0.0;
  double min1 = 0.0;  // Scalar min index of each row.
  double min2 = 0.0;
  double hv12 = 0.0;  // Valid iff options.include_hypervolume.
  double hv21 = 0.0;
  double rank1 = 0.0;  // Valid iff options.d_max was set.
  double rank2 = 0.0;
};

struct AllPairsResult {
  size_t rows = 0;
  size_t cols = 0;
  // All rows*(rows-1)/2 pairs in row-major (i, j) order, i < j.
  std::vector<PairComparison> pairs;
  // Per-row P_rank when options.d_max was set (else empty).
  std::vector<double> ranks;

  const PairComparison& Pair(size_t i, size_t j) const;
};

// Compares every unordered row pair of `matrix`. Returns the budget
// Status when `run` expires mid-sweep (committed `cmp.*` counters remain
// deterministic: admission order fixes the truncation point).
StatusOr<AllPairsResult> AllPairsCompare(const PropertyMatrix& matrix,
                                         const AllPairsOptions& options = {},
                                         RunContext* run = nullptr);

// ---------------------------------------------------------------------------
// Multi-property scoring (§5.5–5.6) on packed matrices. The generic
// BinaryIndex takes arbitrary std::functions, so the packed engine
// supports the named index kinds and reproduces WtdIndex/LexIndex
// arithmetic (and validation) exactly.

enum class PackedBinaryIndexKind { kCoverage, kSpread, kHypervolume };

// P_WTD over aligned matrices (row i of s1 vs row i of s2). `kinds` has
// one entry or one per row, like BinaryIndexList.
StatusOr<double> PackedWtdIndex(const PropertyMatrix& s1,
                                const PropertyMatrix& s2,
                                const std::vector<double>& weights,
                                const std::vector<PackedBinaryIndexKind>& kinds);

// P_lex: 1-based position of the first decisive property, r+1 if none.
StatusOr<size_t> PackedLexIndex(const PropertyMatrix& s1,
                                const PropertyMatrix& s2,
                                const std::vector<double>& epsilons,
                                const std::vector<PackedBinaryIndexKind>& kinds);

// ---------------------------------------------------------------------------
// Set-level dominance (Table 4 over aligned candidate sets) on packed
// matrices — used by the Pareto-front extraction. Matrices must agree in
// rows() and cols().

bool PackedSetWeaklyDominates(const PropertyMatrix& s1,
                              const PropertyMatrix& s2);
bool PackedSetStronglyDominates(const PropertyMatrix& s1,
                                const PropertyMatrix& s2);

}  // namespace mdc

#endif  // MDC_CORE_COMPARE_ENGINE_H_
