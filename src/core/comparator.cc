#include "core/comparator.h"

#include "core/dominance.h"
#include "core/quality_index.h"

namespace mdc {
namespace {

ComparatorOutcome FromScalars(double first, double second,
                              double epsilon = 0.0) {
  if (first > second + epsilon) return ComparatorOutcome::kFirstBetter;
  if (second > first + epsilon) return ComparatorOutcome::kSecondBetter;
  return ComparatorOutcome::kEquivalent;
}

class DominanceComparator final : public Comparator {
 public:
  std::string Name() const override { return "dominance"; }
  ComparatorOutcome Compare(const PropertyVector& d1,
                            const PropertyVector& d2) const override {
    switch (CompareDominance(d1, d2)) {
      case DominanceRelation::kEqual:
        return ComparatorOutcome::kEquivalent;
      case DominanceRelation::kFirstDominates:
        return ComparatorOutcome::kFirstBetter;
      case DominanceRelation::kSecondDominates:
        return ComparatorOutcome::kSecondBetter;
      case DominanceRelation::kIncomparable:
        return ComparatorOutcome::kIncomparable;
    }
    return ComparatorOutcome::kIncomparable;
  }
};

class MinComparator final : public Comparator {
 public:
  std::string Name() const override { return "min-better"; }
  ComparatorOutcome Compare(const PropertyVector& d1,
                            const PropertyVector& d2) const override {
    return FromScalars(MinIndex(d1), MinIndex(d2));
  }
};

class RankComparator final : public Comparator {
 public:
  RankComparator(PropertyVector d_max, double epsilon, double p)
      : d_max_(std::move(d_max)), epsilon_(epsilon), p_(p) {
    MDC_CHECK_GE(epsilon, 0.0);
  }
  std::string Name() const override { return "rank-better"; }
  ComparatorOutcome Compare(const PropertyVector& d1,
                            const PropertyVector& d2) const override {
    // Lower rank (closer to the ideal) is better: flip the scalar order.
    return FromScalars(-RankIndex(d1, d_max_, p_), -RankIndex(d2, d_max_, p_),
                       epsilon_);
  }

 private:
  PropertyVector d_max_;
  double epsilon_;
  double p_;
};

class CoverageComparator final : public Comparator {
 public:
  std::string Name() const override { return "cov-better"; }
  ComparatorOutcome Compare(const PropertyVector& d1,
                            const PropertyVector& d2) const override {
    return FromScalars(CoverageIndex(d1, d2), CoverageIndex(d2, d1));
  }
};

class SpreadComparator final : public Comparator {
 public:
  std::string Name() const override { return "spr-better"; }
  ComparatorOutcome Compare(const PropertyVector& d1,
                            const PropertyVector& d2) const override {
    return FromScalars(SpreadIndex(d1, d2), SpreadIndex(d2, d1));
  }
};

class HypervolumeComparator final : public Comparator {
 public:
  std::string Name() const override { return "hv-better"; }
  ComparatorOutcome Compare(const PropertyVector& d1,
                            const PropertyVector& d2) const override {
    return FromScalars(HypervolumeIndex(d1, d2), HypervolumeIndex(d2, d1));
  }
};

}  // namespace

const char* ComparatorOutcomeName(ComparatorOutcome outcome) {
  switch (outcome) {
    case ComparatorOutcome::kFirstBetter:
      return "first better";
    case ComparatorOutcome::kSecondBetter:
      return "second better";
    case ComparatorOutcome::kEquivalent:
      return "equivalent";
    case ComparatorOutcome::kIncomparable:
      return "incomparable";
  }
  return "unknown";
}

std::unique_ptr<Comparator> MakeDominanceComparator() {
  return std::make_unique<DominanceComparator>();
}

std::unique_ptr<Comparator> MakeMinComparator() {
  return std::make_unique<MinComparator>();
}

std::unique_ptr<Comparator> MakeRankComparator(PropertyVector d_max,
                                               double epsilon, double p) {
  return std::make_unique<RankComparator>(std::move(d_max), epsilon, p);
}

std::unique_ptr<Comparator> MakeCoverageComparator() {
  return std::make_unique<CoverageComparator>();
}

std::unique_ptr<Comparator> MakeSpreadComparator() {
  return std::make_unique<SpreadComparator>();
}

std::unique_ptr<Comparator> MakeHypervolumeComparator() {
  return std::make_unique<HypervolumeComparator>();
}

std::vector<std::unique_ptr<Comparator>> StandardComparators(
    PropertyVector d_max, bool include_hypervolume) {
  std::vector<std::unique_ptr<Comparator>> battery;
  battery.push_back(MakeDominanceComparator());
  battery.push_back(MakeMinComparator());
  if (!d_max.empty()) {
    battery.push_back(MakeRankComparator(std::move(d_max)));
  }
  battery.push_back(MakeCoverageComparator());
  battery.push_back(MakeSpreadComparator());
  if (include_hypervolume) {
    battery.push_back(MakeHypervolumeComparator());
  }
  return battery;
}

}  // namespace mdc
