// Executable companion to Theorem 1 and its corollaries.
//
// Theorem 1 proves that no battery of fewer than N unary quality indices
// can characterize weak dominance on N-dimensional property vectors, i.e.
// the equivalence  [∀i P_i(D1) >= P_i(D2)]  <=>  [D1 ⪰ D2]  is impossible
// with n < N indices. Being a proof, it cannot be "measured" — but it can
// be *witnessed*: for any concrete battery, we can exhibit vector pairs on
// which the equivalence fails. Two constructions are provided:
//
//  1. SwapCounterexample: the proof's own seed — D1 = (a,b,...), D2 with
//     two coordinates swapped are incomparable, yet most aggregate indices
//     order them; any battery that orders all incomparable pairs the same
//     way violates the <= direction.
//  2. FindEquivalenceViolation: randomized search that, given a battery,
//     samples vector pairs until one violates either direction of the
//     equivalence.

#ifndef MDC_CORE_INSUFFICIENCY_H_
#define MDC_CORE_INSUFFICIENCY_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/quality_index.h"

namespace mdc {

struct InsufficiencyWitness {
  bool found = false;
  PropertyVector d1;
  PropertyVector d2;
  std::vector<double> index_values_1;  // P_i(D1) for each battery index.
  std::vector<double> index_values_2;
  // Human-readable account of which direction of the equivalence failed.
  std::string explanation;
};

// The incomparable pair (a,b,c,c,...) vs (b,a,c,c,...) with a < b; always
// incomparable, and any index battery computes *some* order on it.
// Returns a witness iff the battery orders the pair consistently in one
// direction (i.e. claims dominance where there is none).
InsufficiencyWitness SwapCounterexample(
    const std::vector<UnaryIndex>& battery, size_t n, double a = 1.0,
    double b = 2.0, double fill = 1.5);

// Randomized search over integer-valued vectors in [1, value_range];
// stops at the first violation or after `max_trials` pairs.
InsufficiencyWitness FindEquivalenceViolation(
    const std::vector<UnaryIndex>& battery, size_t n, Rng& rng,
    int max_trials = 10000, int value_range = 10);

}  // namespace mdc

#endif  // MDC_CORE_INSUFFICIENCY_H_
