#include "core/bias.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace mdc {

double GiniCoefficient(const PropertyVector& d) {
  MDC_CHECK(!d.empty());
  std::vector<double> sorted = d.values();
  for (double v : sorted) {
    if (v < 0.0) return 0.0;  // Undefined for negative values.
  }
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * sorted[i];
    total += sorted[i];
  }
  if (total <= 0.0) return 0.0;
  return weighted / (n * total);
}

BiasReport ComputeBias(const PropertyVector& d) {
  MDC_CHECK(!d.empty());
  BiasReport report;
  report.size = d.size();
  report.min = d.Min();
  report.max = d.Max();
  report.mean = d.Mean();
  report.stddev = d.StdDev();
  report.range = report.max - report.min;
  size_t at_min = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if (d[i] == report.min) ++at_min;
  }
  report.fraction_at_min =
      static_cast<double>(at_min) / static_cast<double>(d.size());
  report.gini = GiniCoefficient(d);
  return report;
}

std::string BiasReport::ToString() const {
  return "min=" + FormatCompact(min, 4) + " max=" + FormatCompact(max, 4) +
         " mean=" + FormatCompact(mean, 4) +
         " stddev=" + FormatCompact(stddev, 4) +
         " at_min=" + FormatCompact(fraction_at_min, 4) +
         " gini=" + FormatCompact(gini, 4);
}

}  // namespace mdc
