// r-property anonymizations — Definition 2 of the paper, as API.
//
// A PropertyExtractor names one measurable per-tuple property; inducing a
// list of r extractors on a release yields the paper's Υ — an aligned
// PropertySet ready for the dominance comparators (Table 4) and the
// multi-property indices (§5.5–5.7). StandardExtractors() bundles the
// properties the paper itself uses: equivalence-class size, sensitive
// rarity, linkage privacy, and per-tuple utility.

#ifndef MDC_CORE_R_PROPERTY_H_
#define MDC_CORE_R_PROPERTY_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"
#include "core/dominance.h"

namespace mdc {

struct PropertyExtractor {
  std::string name;
  // Must produce a HIGHER-IS-BETTER vector of size row_count().
  std::function<StatusOr<PropertyVector>(const Anonymization&,
                                         const EquivalencePartition&)>
      fn;
};

// The r-property projection: applies each extractor in order. Fails if
// any extractor fails or returns a wrong-sized vector.
StatusOr<PropertySet> InduceProperties(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    const std::vector<PropertyExtractor>& extractors);

// Named extractors:
//  - "equivalence-class-size": |EC| per tuple (k-anonymity property).
//  - "linkage-privacy": 1 - 1/|EC| per tuple.
//  - "sensitive-rarity": negated count of the tuple's sensitive value in
//    its class (needs a resolvable sensitive column).
//  - "utility": per-tuple LM utility for full-domain releases, class-
//    spread utility otherwise.
PropertyExtractor ClassSizeExtractor();
PropertyExtractor LinkagePrivacyExtractor();
PropertyExtractor SensitiveRarityExtractor(
    std::optional<size_t> sensitive_column = std::nullopt);
PropertyExtractor UtilityExtractor();

// {class size, sensitive rarity, utility} — a 3-property anonymization.
std::vector<PropertyExtractor> StandardExtractors(
    std::optional<size_t> sensitive_column = std::nullopt);

}  // namespace mdc

#endif  // MDC_CORE_R_PROPERTY_H_
