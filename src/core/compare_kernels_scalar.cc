// Portable kernel variants — the ground truth every SIMD variant must
// match bit for bit. These are the exact loops the pre-dispatch engine
// inlined (see compare_kernels.h for the contract).

#include <algorithm>

#include "core/compare_kernels.h"

namespace mdc {
namespace {

// Two separate loops on purpose: the branch-free count loop
// auto-vectorizes at -O3, while the spread loop is pinned to a serial
// chain by FP ordering; fusing them would drag the counts into the
// serial loop. Both loops read L1-resident data the second time around
// (the driver blocks its sweeps), so the extra pass costs loads only.
void CountSpreadScalar(const double* a, const double* b, size_t n,
                       uint64_t* gt12, uint64_t* gt21, double* spr12,
                       double* spr21) {
  uint64_t c12 = 0, c21 = 0;
  for (size_t i = 0; i < n; ++i) {
    c12 += a[i] > b[i] ? 1u : 0u;
    c21 += b[i] > a[i] ? 1u : 0u;
  }
  *gt12 += c12;
  *gt21 += c21;
  double s12 = *spr12, s21 = *spr21;
  for (size_t i = 0; i < n; ++i) {
    s12 += std::max(a[i] - b[i], 0.0);
    s21 += std::max(b[i] - a[i], 0.0);
  }
  *spr12 = s12;
  *spr21 = s21;
}

double RowMinScalar(const double* d, size_t n, double init) {
  double min_value = init;
  for (size_t i = 0; i < n; ++i) min_value = std::min(min_value, d[i]);
  return min_value;
}

bool WeaklyDominatesScalar(const double* a, const double* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

void StrictFlagsScalar(const double* a, const double* b, size_t n,
                       bool* any12, bool* any21) {
  bool f12 = false, f21 = false;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] > b[i]) f12 = true;
    if (b[i] > a[i]) f21 = true;
    if (f12 && f21) break;
  }
  *any12 = f12;
  *any21 = f21;
}

}  // namespace

const CompareKernels kCompareKernelsScalar = {
    CountSpreadScalar, RowMinScalar, WeaklyDominatesScalar,
    StrictFlagsScalar,
};

const CompareKernels& CompareKernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return kCompareKernelsScalar;
    case SimdLevel::kAvx2:
#if defined(MDC_HAVE_AVX2_KERNELS)
      return kCompareKernelsAvx2;
#else
      return kCompareKernelsScalar;
#endif
    case SimdLevel::kAvx512:
#if defined(MDC_HAVE_AVX512_KERNELS)
      return kCompareKernelsAvx512;
#elif defined(MDC_HAVE_AVX2_KERNELS)
      return kCompareKernelsAvx2;
#else
      return kCompareKernelsScalar;
#endif
  }
  return kCompareKernelsScalar;
}

const CompareKernels& ActiveCompareKernels() {
  return CompareKernelsFor(ActiveSimdLevel());
}

}  // namespace mdc
