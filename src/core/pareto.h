// Pareto-front machinery — the paper's §7 extension made concrete.
//
// The paper closes by arguing that under vector-valued privacy the search
// for "good" anonymizations becomes multi-objective: privacy should be an
// objective, not a constraint. These helpers extract non-dominated sets
// from candidate anonymizations, in both the set-dominance form (aligned
// property vectors, Table 4 semantics) and the scalarized form used for
// plotting trade-off fronts, plus a knee-point selector.

#ifndef MDC_CORE_PARETO_H_
#define MDC_CORE_PARETO_H_

#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/compare_engine.h"
#include "core/dominance.h"

namespace mdc {

// Indices of candidates not STRONGLY dominated (set-level, Table 4) by
// any other candidate. Duplicate candidates all survive (none strongly
// dominates its copy). Arities must align across candidates.
std::vector<size_t> ParetoFront(const std::vector<PropertySet>& candidates);

// Same over scalar objective tuples (higher is better in every
// coordinate).
std::vector<size_t> ParetoFrontScalar(
    const std::vector<std::vector<double>>& points);

struct ParetoOptions {
  CompareEngine engine = CompareEngine::kPacked;
  // Dominance-check threads (workers + caller); <= 0 means hardware.
  int threads = 1;
};

// Engine-aware front extraction: identical fronts to the legacy
// overloads above for every engine/thread combination (wave protocol:
// serial admission charging `run` once per candidate, parallel dominance
// checks, in-order commit). Returns InvalidArgument on misaligned
// candidates instead of aborting, and the budget Status when `run`
// expires.
StatusOr<std::vector<size_t>> ParetoFront(
    const std::vector<PropertySet>& candidates, const ParetoOptions& options,
    RunContext* run = nullptr);
StatusOr<std::vector<size_t>> ParetoFrontScalar(
    const std::vector<std::vector<double>>& points,
    const ParetoOptions& options, RunContext* run = nullptr);

// Knee point of a scalar front: the point minimizing the L2 distance to
// the ideal (per-coordinate maximum) after min-max normalization. Fails
// on an empty set or inconsistent arity.
StatusOr<size_t> KneePoint(const std::vector<std::vector<double>>& points);

}  // namespace mdc

#endif  // MDC_CORE_PARETO_H_
