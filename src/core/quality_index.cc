#include "core/quality_index.h"

#include <algorithm>
#include <cmath>

namespace mdc {

double MinIndex(const PropertyVector& d) { return d.Min(); }
double MaxIndex(const PropertyVector& d) { return d.Max(); }
double MeanIndex(const PropertyVector& d) { return d.Mean(); }
double SumIndex(const PropertyVector& d) { return d.Sum(); }

double RankIndex(const PropertyVector& d, const PropertyVector& d_max,
                 double p) {
  return d.DistanceTo(d_max, p);
}

bool RankBetter(const PropertyVector& d1, const PropertyVector& d2,
                const PropertyVector& d_max, double epsilon, double p) {
  MDC_CHECK_GE(epsilon, 0.0);
  return RankIndex(d1, d_max, p) < RankIndex(d2, d_max, p) - epsilon;
}

double CoverageIndex(const PropertyVector& d1, const PropertyVector& d2) {
  MDC_CHECK_EQ(d1.size(), d2.size());
  MDC_CHECK(!d1.empty());
  size_t count = 0;
  for (size_t i = 0; i < d1.size(); ++i) {
    if (d1[i] >= d2[i]) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(d1.size());
}

bool CoverageBetter(const PropertyVector& d1, const PropertyVector& d2) {
  return CoverageIndex(d1, d2) > CoverageIndex(d2, d1);
}

size_t StrictlyBetterCount(const PropertyVector& d1,
                           const PropertyVector& d2) {
  MDC_CHECK_EQ(d1.size(), d2.size());
  size_t count = 0;
  for (size_t i = 0; i < d1.size(); ++i) {
    if (d1[i] > d2[i]) ++count;
  }
  return count;
}

double SpreadIndex(const PropertyVector& d1, const PropertyVector& d2) {
  MDC_CHECK_EQ(d1.size(), d2.size());
  double spread = 0.0;
  for (size_t i = 0; i < d1.size(); ++i) {
    spread += std::max(d1[i] - d2[i], 0.0);
  }
  return spread;
}

bool SpreadBetter(const PropertyVector& d1, const PropertyVector& d2) {
  return SpreadIndex(d1, d2) > SpreadIndex(d2, d1);
}

double DominatedHypervolume(const PropertyVector& d) {
  MDC_CHECK(!d.empty());
  double volume = 1.0;
  for (size_t i = 0; i < d.size(); ++i) {
    MDC_CHECK_MSG(d[i] > 0.0,
                  "hypervolume indices require strictly positive entries");
    volume *= d[i];
  }
  return volume;
}

double HypervolumeIndex(const PropertyVector& d1, const PropertyVector& d2) {
  MDC_CHECK_EQ(d1.size(), d2.size());
  MDC_CHECK(!d1.empty());
  double own = 1.0;
  double shared = 1.0;
  for (size_t i = 0; i < d1.size(); ++i) {
    MDC_CHECK_MSG(d1[i] > 0.0 && d2[i] > 0.0,
                  "hypervolume indices require strictly positive entries");
    own *= d1[i];
    shared *= std::min(d1[i], d2[i]);
  }
  return own - shared;
}

bool HypervolumeBetter(const PropertyVector& d1, const PropertyVector& d2) {
  return HypervolumeIndex(d1, d2) > HypervolumeIndex(d2, d1);
}

std::vector<UnaryIndex> StandardUnaryIndices(const PropertyVector& d_max) {
  std::vector<UnaryIndex> indices = {
      {"min", [](const PropertyVector& d) { return d.Min(); }},
      {"max", [](const PropertyVector& d) { return d.Max(); }},
      {"mean", [](const PropertyVector& d) { return d.Mean(); }},
      {"sum", [](const PropertyVector& d) { return d.Sum(); }},
      {"stddev", [](const PropertyVector& d) { return -d.StdDev(); }},
  };
  if (!d_max.empty()) {
    indices.push_back({"neg-rank", [d_max](const PropertyVector& d) {
                         // Negated so that "higher index value" matches
                         // "closer to D_max".
                         return -RankIndex(d, d_max);
                       }});
  }
  return indices;
}

BinaryIndex MakeCoverageIndex() {
  return {"cov", [](const PropertyVector& a, const PropertyVector& b) {
            return CoverageIndex(a, b);
          }};
}

BinaryIndex MakeSpreadIndex() {
  return {"spr", [](const PropertyVector& a, const PropertyVector& b) {
            return SpreadIndex(a, b);
          }};
}

BinaryIndex MakeHypervolumeIndex() {
  return {"hv", [](const PropertyVector& a, const PropertyVector& b) {
            return HypervolumeIndex(a, b);
          }};
}

}  // namespace mdc
