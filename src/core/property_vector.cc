#include "core/property_vector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace mdc {

double PropertyVector::Min() const {
  MDC_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double PropertyVector::Max() const {
  MDC_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double PropertyVector::Sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double PropertyVector::Mean() const {
  MDC_CHECK(!values_.empty());
  return Sum() / static_cast<double>(values_.size());
}

double PropertyVector::StdDev() const {
  MDC_CHECK(!values_.empty());
  double mean = Mean();
  double sum_sq = 0.0;
  for (double v : values_) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values_.size()));
}

double PropertyVector::DistanceTo(const PropertyVector& other,
                                  double p) const {
  MDC_CHECK_EQ(values_.size(), other.values_.size());
  MDC_CHECK_GE(p, 1.0);
  double sum = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    sum += std::pow(std::abs(values_[i] - other.values_[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

double PropertyVector::LInfDistance(const PropertyVector& other) const {
  MDC_CHECK_EQ(values_.size(), other.values_.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(values_[i] - other.values_[i]));
  }
  return max_diff;
}

PropertyVector PropertyVector::Negated(std::string new_name) const {
  std::vector<double> negated(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) negated[i] = -values_[i];
  return PropertyVector(std::move(new_name), std::move(negated));
}

std::string PropertyVector::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatCompact(values_[i], 4);
  }
  out += ")";
  return out;
}

}  // namespace mdc
