// Supervised batch execution of anonymization jobs.
//
// A batch is a list of (id, params, budgets) jobs executed one by one
// through a caller-supplied executor under a fresh RunContext each
// attempt. The runner supervises each job:
//
//  - transient failures (deadline, resource exhaustion, internal errors)
//    are retried with bounded exponential backoff up to max_retries, then
//    marked exhausted;
//  - deterministic failures (bad arguments, infeasible instances, ...)
//    are quarantined immediately — retrying them cannot help;
//  - cancellation aborts the batch cleanly after checkpointing;
//  - after every terminal job the batch checkpoint is rewritten durably,
//    so a killed batch resumes at the first incomplete job.
//
// The executor is opaque to this layer (the CLI wires it to the anonymize/
// algorithms; tests wire it to fakes), which keeps core/ decoupled from
// the algorithm headers.

#ifndef MDC_CORE_BATCH_RUNNER_H_
#define MDC_CORE_BATCH_RUNNER_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"

namespace mdc {

struct BatchJob {
  std::string id;  // Unique within the batch; the resume key.
  // Opaque key=value parameters interpreted by the executor (dataset,
  // algorithm, k, ...).
  std::map<std::string, std::string> params;
  // Per-attempt budgets; 0 means unbounded.
  int64_t deadline_ms = 0;
  uint64_t max_steps = 0;
};

enum class JobState : uint32_t {
  kPending = 0,      // Not yet run (or aborted mid-batch).
  kOk = 1,           // Executor returned OK with no budget expiry.
  kTruncated = 2,    // Executor returned OK but degraded to best-so-far.
  kQuarantined = 3,  // Deterministic failure; retrying cannot help.
  kExhausted = 4,    // Transient failure persisted through every retry.
};

// Stable name for reports and checkpoints ("ok", "quarantined", ...).
std::string JobStateName(JobState state);

struct JobOutcome {
  std::string id;
  JobState state = JobState::kPending;
  uint32_t attempts = 0;   // Executor invocations (1 = no retry needed).
  std::string message;     // Last failure message; empty on success.
};

struct BatchRunnerConfig {
  int max_retries = 2;           // Retries after the first attempt.
  int64_t backoff_base_ms = 10;  // First retry delay; doubles per retry.
  int64_t backoff_max_ms = 1000;
  // Bounded decorrelated jitter on retry delays: each delay is drawn
  // uniformly from [base, min(max, 3 * previous delay)], which keeps the
  // exponential envelope but desynchronizes concurrent retry loops so
  // multi-tenant load cannot form a synchronized retry storm. The draw
  // stream is seeded from jitter_seed XOR a per-job id hash, so delays are
  // reproducible for a fixed config. Jitter affects only sleep durations —
  // the deterministic-counter contract is untouched because batch.retries
  // is charged at attempt commit points, never from timing.
  bool backoff_jitter = true;
  uint64_t backoff_jitter_seed = 0;
  // Batch checkpoint file; empty disables checkpointing. Written durably
  // after every terminal job and loaded (strictly — a corrupt file is an
  // error, not a silent fresh start) before the first.
  std::string checkpoint_path;
  CancellationToken cancellation;
};

struct BatchResult {
  std::vector<JobOutcome> outcomes;  // One per job, in job order.
  bool aborted = false;  // True when cancellation stopped the batch early.

  size_t CountState(JobState state) const;

  // Per-job outcome table plus a totals line.
  std::string Summary() const;
};

// A status the runner treats as worth retrying: budget expiry from an
// over-tight deadline or step budget, and internal errors (I/O flakes).
// Everything else is deterministic and quarantines the job. kCancelled is
// neither — it aborts the whole batch.
bool IsTransientStatus(const Status& status);

// Retry-delay stream for one job's attempts. With jitter disabled the
// stream is the classic deterministic doubling base, 2*base, 4*base, ...
// capped at max; with jitter enabled it is bounded decorrelated jitter
// (see BatchRunnerConfig::backoff_jitter). Reused by the service layer so
// every supervised retry loop in the system shares one backoff law.
class BackoffSequence {
 public:
  // `salt` decorrelates streams (callers pass a job-id hash).
  BackoffSequence(int64_t base_ms, int64_t max_ms, bool jitter,
                  uint64_t seed, uint64_t salt);
  explicit BackoffSequence(const BatchRunnerConfig& config, uint64_t salt);

  // Delay before retry `retry_number` (1 = first retry). Always within
  // [0, max_ms]; with base_ms <= 0 always 0. Calls must be made with
  // retry_number increasing from 1 — the jittered stream is stateful.
  int64_t NextDelayMs(int retry_number);

 private:
  int64_t base_ms_;
  int64_t max_ms_;
  bool jitter_;
  uint64_t rng_state_;
  int64_t prev_ms_;
};

// FNV-1a over `text`; the salt BackoffSequence callers derive from a job
// id so per-job delay streams differ even under one seed.
uint64_t BackoffSalt(std::string_view text);

// Runs a job once under a fresh RunContext built from its budgets. The
// Status the executor returns classifies the attempt; a returned OK with
// run->exhausted() non-OK means the job degraded to a truncated result.
using JobExecutor = std::function<Status(const BatchJob& job,
                                         RunContext* run)>;

// Executes `jobs` in order under supervision. Job ids must be unique and
// non-empty. Returns the per-job outcomes; only infrastructure problems
// (unreadable/corrupt checkpoint, unwritable checkpoint path) are errors.
StatusOr<BatchResult> RunBatch(const std::vector<BatchJob>& jobs,
                               const JobExecutor& executor,
                               const BatchRunnerConfig& config);

// Parses a job-spec CSV into jobs. The first row is a header and must
// contain an `id` column; `deadline_ms` and `max_steps` columns (optional)
// become the per-attempt budgets; every other column becomes a params
// entry. Blank ids and duplicate ids are rejected.
StatusOr<std::vector<BatchJob>> ParseJobSpecCsv(std::string_view text);

}  // namespace mdc

#endif  // MDC_CORE_BATCH_RUNNER_H_
