#include "core/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <thread>

#include "common/csv.h"
#include "common/durable_io.h"
#include "common/metrics.h"
#include "common/snapshot.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "common/trace.h"

namespace mdc {
namespace {

// v1: terminal outcomes only. v2 appends the process metrics counters at
// save time, so a resumed batch restores cumulative totals.
constexpr uint32_t kBatchPayloadVersion = 2;

// The batch checkpoint is the list of terminal outcomes so far, in
// completion order, plus the counter snapshot at save time.
std::string SerializeOutcomes(const std::vector<JobOutcome>& outcomes) {
  SnapshotWriter writer(SnapshotKind::kBatch, kBatchPayloadVersion);
  writer.WriteU64(outcomes.size());
  for (const JobOutcome& outcome : outcomes) {
    writer.WriteString(outcome.id);
    writer.WriteU32(static_cast<uint32_t>(outcome.state));
    writer.WriteU32(outcome.attempts);
    writer.WriteString(outcome.message);
  }
  const std::map<std::string, uint64_t> counters =
      metrics::Snapshot().counters;
  writer.WriteU64(counters.size());
  for (const auto& [name, value] : counters) {
    writer.WriteString(name);
    writer.WriteU64(value);
  }
  return writer.Finish();
}

struct BatchCheckpointData {
  std::vector<JobOutcome> outcomes;
  std::map<std::string, uint64_t> counters;
};

StatusOr<BatchCheckpointData> DeserializeOutcomes(std::string_view bytes) {
  // Accept the previous payload version (no counter section) so existing
  // checkpoints keep resuming.
  StatusOr<SnapshotReader> reader_or =
      SnapshotReader::Open(bytes, SnapshotKind::kBatch, kBatchPayloadVersion);
  bool has_counters = reader_or.ok();
  if (!has_counters) {
    reader_or = SnapshotReader::Open(bytes, SnapshotKind::kBatch, 1);
    if (!reader_or.ok()) return reader_or.status();
  }
  SnapshotReader reader = std::move(reader_or).value();
  MDC_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count > reader.remaining() / sizeof(uint64_t)) {
    return Status::InvalidArgument(
        "batch checkpoint: outcome count exceeds data");
  }
  BatchCheckpointData data;
  data.outcomes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    JobOutcome outcome;
    MDC_ASSIGN_OR_RETURN(outcome.id, reader.ReadString());
    MDC_ASSIGN_OR_RETURN(uint32_t state, reader.ReadU32());
    if (state > static_cast<uint32_t>(JobState::kExhausted)) {
      return Status::InvalidArgument("batch checkpoint: unknown job state");
    }
    outcome.state = static_cast<JobState>(state);
    MDC_ASSIGN_OR_RETURN(outcome.attempts, reader.ReadU32());
    MDC_ASSIGN_OR_RETURN(outcome.message, reader.ReadString());
    data.outcomes.push_back(std::move(outcome));
  }
  if (has_counters) {
    MDC_ASSIGN_OR_RETURN(uint64_t counter_count, reader.ReadU64());
    if (counter_count > reader.remaining() / sizeof(uint64_t)) {
      return Status::InvalidArgument(
          "batch checkpoint: counter count exceeds data");
    }
    for (uint64_t i = 0; i < counter_count; ++i) {
      MDC_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
      MDC_ASSIGN_OR_RETURN(uint64_t value, reader.ReadU64());
      data.counters[std::move(name)] = value;
    }
  }
  MDC_RETURN_IF_ERROR(reader.ExpectEnd());
  return data;
}

// splitmix64: small, seedable, platform-stable — delays must be
// reproducible for a fixed config on any libc.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t BackoffSalt(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

BackoffSequence::BackoffSequence(int64_t base_ms, int64_t max_ms, bool jitter,
                                 uint64_t seed, uint64_t salt)
    : base_ms_(base_ms),
      max_ms_(max_ms),
      jitter_(jitter),
      rng_state_(seed ^ salt),
      prev_ms_(base_ms) {}

BackoffSequence::BackoffSequence(const BatchRunnerConfig& config,
                                 uint64_t salt)
    : BackoffSequence(config.backoff_base_ms, config.backoff_max_ms,
                      config.backoff_jitter, config.backoff_jitter_seed,
                      salt) {}

int64_t BackoffSequence::NextDelayMs(int retry_number) {
  if (base_ms_ <= 0) return 0;
  if (!jitter_) {
    int64_t delay = base_ms_;
    for (int i = 1; i < retry_number && delay < max_ms_; ++i) {
      delay *= 2;
    }
    return std::min(delay, max_ms_);
  }
  // Decorrelated jitter: uniform over [base, min(max, 3 * previous)].
  int64_t ceiling = std::min(max_ms_, prev_ms_ > max_ms_ / 3
                                          ? max_ms_
                                          : 3 * prev_ms_);
  if (ceiling < base_ms_) ceiling = base_ms_;
  uint64_t span = static_cast<uint64_t>(ceiling - base_ms_) + 1;
  int64_t delay =
      base_ms_ + static_cast<int64_t>(SplitMix64(&rng_state_) % span);
  prev_ms_ = delay;
  return delay;
}

std::string JobStateName(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kOk:
      return "ok";
    case JobState::kTruncated:
      return "truncated";
    case JobState::kQuarantined:
      return "quarantined";
    case JobState::kExhausted:
      return "exhausted";
  }
  return "unknown";
}

bool IsTransientStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

size_t BatchResult::CountState(JobState state) const {
  size_t count = 0;
  for (const JobOutcome& outcome : outcomes) {
    if (outcome.state == state) ++count;
  }
  return count;
}

std::string BatchResult::Summary() const {
  TextTable table;
  table.SetHeader({"job", "state", "attempts", "note"});
  for (const JobOutcome& outcome : outcomes) {
    std::string state = JobStateName(outcome.state);
    if (outcome.state != JobState::kPending && outcome.attempts > 1) {
      state += " (retried x" + std::to_string(outcome.attempts - 1) + ")";
    }
    table.AddRow({outcome.id, state, std::to_string(outcome.attempts),
                  outcome.message});
  }
  std::string summary = table.Render();
  summary += "\ntotals: ok=" + std::to_string(CountState(JobState::kOk)) +
             " truncated=" + std::to_string(CountState(JobState::kTruncated)) +
             " quarantined=" +
             std::to_string(CountState(JobState::kQuarantined)) +
             " exhausted=" + std::to_string(CountState(JobState::kExhausted)) +
             " pending=" + std::to_string(CountState(JobState::kPending)) +
             (aborted ? " (aborted)" : "") + "\n";
  return summary;
}

StatusOr<BatchResult> RunBatch(const std::vector<BatchJob>& jobs,
                               const JobExecutor& executor,
                               const BatchRunnerConfig& config) {
  if (executor == nullptr) {
    return Status::InvalidArgument("batch runner: null executor");
  }
  if (config.max_retries < 0) {
    return Status::InvalidArgument("batch runner: max_retries must be >= 0");
  }
  std::set<std::string> ids;
  for (const BatchJob& job : jobs) {
    if (job.id.empty()) {
      return Status::InvalidArgument("batch runner: job with empty id");
    }
    if (!ids.insert(job.id).second) {
      return Status::InvalidArgument("batch runner: duplicate job id " +
                                     job.id);
    }
  }

  // Resume: terminal outcomes recorded by a previous (killed) run of this
  // batch. A missing checkpoint file is a fresh start; anything else
  // unreadable or corrupt is a hard error — silently re-running completed
  // jobs is worse than stopping.
  std::map<std::string, JobOutcome> completed;
  if (!config.checkpoint_path.empty()) {
    StatusOr<std::string> bytes = ReadFileToString(config.checkpoint_path);
    if (bytes.ok()) {
      MDC_ASSIGN_OR_RETURN(BatchCheckpointData prior,
                           DeserializeOutcomes(*bytes));
      for (JobOutcome& outcome : prior.outcomes) {
        if (ids.count(outcome.id) == 0) {
          return Status::InvalidArgument(
              "batch checkpoint: unknown job id " + outcome.id +
              " (spec changed since the checkpoint was written?)");
        }
        completed[outcome.id] = std::move(outcome);
      }
      // Restore the interrupted run's cumulative totals; the registry is
      // monotone, so new events add on top.
      metrics::MergeCounters(prior.counters);
      MDC_METRIC_INC("batch.resumes");
      MDC_METRIC_ADD("batch.jobs_restored", prior.outcomes.size());
    } else if (bytes.status().code() != StatusCode::kNotFound) {
      return bytes.status();
    }
  }

  BatchResult result;
  result.outcomes.reserve(jobs.size());
  std::vector<JobOutcome> terminal;  // Completion order, for the checkpoint.
  for (const auto& [id, outcome] : completed) {
    (void)id;
    terminal.push_back(outcome);
  }

  auto save_checkpoint = [&]() -> Status {
    if (config.checkpoint_path.empty()) return Status::Ok();
    MDC_RETURN_IF_ERROR(DurableWriteFile(config.checkpoint_path,
                                         SerializeOutcomes(terminal)));
    MDC_METRIC_INC("batch.checkpoint_saves");
    return Status::Ok();
  };

  for (const BatchJob& job : jobs) {
    auto it = completed.find(job.id);
    if (it != completed.end()) {
      result.outcomes.push_back(it->second);
      continue;
    }
    if (result.aborted || config.cancellation.cancelled()) {
      result.aborted = true;
      result.outcomes.push_back(JobOutcome{job.id, JobState::kPending, 0, ""});
      continue;
    }

    JobOutcome outcome;
    outcome.id = job.id;
    TRACE_SPAN("batch/job");
    BackoffSequence backoff(config, BackoffSalt(job.id));
    while (true) {
      ++outcome.attempts;
      MDC_METRIC_INC("batch.attempts");
      if (outcome.attempts > 1) MDC_METRIC_INC("batch.retries");
      RunContext run;
      if (job.deadline_ms > 0) run.set_deadline_ms(job.deadline_ms);
      if (job.max_steps > 0) run.set_max_steps(job.max_steps);
      run.set_cancellation(config.cancellation);

      Status status = executor(job, &run);
      if (status.ok()) {
        outcome.state = run.exhausted().ok() ? JobState::kOk
                                             : JobState::kTruncated;
        outcome.message.clear();
        break;
      }
      if (status.code() == StatusCode::kCancelled ||
          config.cancellation.cancelled()) {
        // Abort the whole batch: this job stays pending (it will re-run on
        // resume), everything terminal so far is checkpointed.
        outcome.state = JobState::kPending;
        outcome.message = status.message();
        break;
      }
      outcome.message = status.message();
      if (!IsTransientStatus(status)) {
        outcome.state = JobState::kQuarantined;
        break;
      }
      if (outcome.attempts > static_cast<uint32_t>(config.max_retries)) {
        outcome.state = JobState::kExhausted;
        break;
      }
      int64_t delay =
          backoff.NextDelayMs(static_cast<int>(outcome.attempts));
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }

    if (outcome.state == JobState::kPending) {
      result.aborted = true;
      MDC_METRIC_INC("batch.aborted");
      result.outcomes.push_back(std::move(outcome));
      continue;
    }
    switch (outcome.state) {
      case JobState::kOk:
        MDC_METRIC_INC("batch.jobs_ok");
        break;
      case JobState::kTruncated:
        MDC_METRIC_INC("batch.jobs_truncated");
        break;
      case JobState::kQuarantined:
        MDC_METRIC_INC("batch.jobs_quarantined");
        break;
      case JobState::kExhausted:
        MDC_METRIC_INC("batch.jobs_exhausted");
        break;
      case JobState::kPending:
        break;
    }
    terminal.push_back(outcome);
    result.outcomes.push_back(std::move(outcome));
    MDC_RETURN_IF_ERROR(save_checkpoint());
  }

  // Persist once more so a fully-finished batch's checkpoint names every
  // job (also covers the aborted case where the last save was mid-batch).
  MDC_RETURN_IF_ERROR(save_checkpoint());
  return result;
}

StatusOr<std::vector<BatchJob>> ParseJobSpecCsv(std::string_view text) {
  MDC_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ParseCsv(text));
  if (rows.empty()) {
    return Status::InvalidArgument("job spec: empty CSV");
  }
  const std::vector<std::string>& header = rows[0];
  size_t id_col = header.size();
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "id") id_col = i;
  }
  if (id_col == header.size()) {
    return Status::InvalidArgument("job spec: header has no `id` column");
  }

  std::set<std::string> seen;
  std::vector<BatchJob> jobs;
  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.size() != header.size()) {
      return Status::InvalidArgument(
          "job spec: row " + std::to_string(r + 1) + " has " +
          std::to_string(row.size()) + " fields, header has " +
          std::to_string(header.size()));
    }
    BatchJob job;
    job.id = row[id_col];
    if (job.id.empty()) {
      return Status::InvalidArgument("job spec: row " +
                                     std::to_string(r + 1) + " has empty id");
    }
    if (!seen.insert(job.id).second) {
      return Status::InvalidArgument("job spec: duplicate id " + job.id);
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (c == id_col) continue;
      const std::string& key = header[c];
      const std::string& value = row[c];
      if (key == "deadline_ms") {
        if (value.empty()) continue;
        std::optional<int64_t> parsed = ParseInt64(value);
        if (!parsed.has_value() || *parsed < 0) {
          return Status::InvalidArgument("job spec: bad deadline_ms for " +
                                         job.id + ": " + value);
        }
        job.deadline_ms = *parsed;
      } else if (key == "max_steps") {
        if (value.empty()) continue;
        std::optional<int64_t> parsed = ParseInt64(value);
        if (!parsed.has_value() || *parsed < 0) {
          return Status::InvalidArgument("job spec: bad max_steps for " +
                                         job.id + ": " + value);
        }
        job.max_steps = static_cast<uint64_t>(*parsed);
      } else {
        job.params[key] = value;
      }
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace mdc
