// Unified ▶-better comparator interface.
//
// The paper treats a comparator ▶ as a user-defined ordering on property
// vectors (§3, Table 4 bottom row). This header reifies that: every
// comparator of §4–§5 — dominance, min (the k-anonymity practice), rank,
// coverage, spread, hypervolume — implements one interface, so comparative
// studies can sweep a whole battery of comparators over the same pair of
// anonymizations (see core/report.h).

#ifndef MDC_CORE_COMPARATOR_H_
#define MDC_CORE_COMPARATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/property_vector.h"

namespace mdc {

enum class ComparatorOutcome {
  kFirstBetter,
  kSecondBetter,
  kEquivalent,    // Neither better (tie under the comparator).
  kIncomparable,  // Only dominance-style comparators produce this.
};

const char* ComparatorOutcomeName(ComparatorOutcome outcome);

class Comparator {
 public:
  virtual ~Comparator() = default;

  // Short name for report tables ("cov-better", "weak-dominance", ...).
  virtual std::string Name() const = 0;

  // Compares D1 against D2 (both higher-is-better, equal size).
  virtual ComparatorOutcome Compare(const PropertyVector& d1,
                                    const PropertyVector& d2) const = 0;
};

// Strict comparator: ≻ / ∥ / equality per Table 4.
std::unique_ptr<Comparator> MakeDominanceComparator();

// ▶_min: compares min(D1) vs min(D2) — the scalar k-anonymity practice.
std::unique_ptr<Comparator> MakeMinComparator();

// ▶_rank with the given ideal vector and tolerance (§5.1).
std::unique_ptr<Comparator> MakeRankComparator(PropertyVector d_max,
                                               double epsilon = 0.0,
                                               double p = 2.0);

// ▶_cov (§5.2), ▶_spr (§5.3), ▶_hv (§5.4; positive vectors only).
std::unique_ptr<Comparator> MakeCoverageComparator();
std::unique_ptr<Comparator> MakeSpreadComparator();
std::unique_ptr<Comparator> MakeHypervolumeComparator();

// The full §4-§5 battery. `d_max` parameterizes the rank comparator; pass
// an empty vector to omit it. The hypervolume comparator is included only
// when `include_hypervolume` (callers with non-positive or large vectors
// should leave it out: the product overflows past ~1000 entries).
std::vector<std::unique_ptr<Comparator>> StandardComparators(
    PropertyVector d_max = PropertyVector(),
    bool include_hypervolume = false);

}  // namespace mdc

#endif  // MDC_CORE_COMPARATOR_H_
