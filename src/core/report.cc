#include "core/report.h"

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/text_table.h"
#include "core/properties.h"
#include "privacy/privacy_model.h"
#include "utility/loss_metric.h"

namespace mdc {
namespace {

struct NamedProperty {
  std::string name;
  PropertyVector first;
  PropertyVector second;
};

const PropertyVector kNoIdeal;

// The packed-engine equivalent of sweeping StandardComparators(ideal,
// /*include_hypervolume=*/false) over one property: same comparator
// names, same order, same outcomes, from one fused kernel pass.
std::vector<ComparatorVerdict> PackedBattery(const NamedProperty& property,
                                             const PropertyVector& ideal) {
  const size_t n = property.first.size();
  const double* d1 = property.first.values().data();
  const double* d2 = property.second.values().data();
  PairwiseStats stats = ComputePairwiseStats(d1, d2, n, /*with_hv=*/false);

  std::vector<ComparatorVerdict> verdicts;
  auto add = [&](const char* comparator, ComparatorOutcome outcome) {
    verdicts.push_back({property.name, comparator, outcome});
  };
  ComparatorOutcome dominance = ComparatorOutcome::kIncomparable;
  switch (RelationFromStats(stats)) {
    case DominanceRelation::kEqual:
      dominance = ComparatorOutcome::kEquivalent;
      break;
    case DominanceRelation::kFirstDominates:
      dominance = ComparatorOutcome::kFirstBetter;
      break;
    case DominanceRelation::kSecondDominates:
      dominance = ComparatorOutcome::kSecondBetter;
      break;
    case DominanceRelation::kIncomparable:
      dominance = ComparatorOutcome::kIncomparable;
      break;
  }
  add("dominance", dominance);
  add("min-better", OutcomeFromScalars(stats.min1, stats.min2));
  if (!ideal.empty()) {
    double rank1 = PackedRankIndex(d1, ideal.values().data(), n);
    double rank2 = PackedRankIndex(d2, ideal.values().data(), n);
    // Lower rank (closer to the ideal) is better: flip the scalar order.
    add("rank-better", OutcomeFromScalars(-rank1, -rank2));
  }
  add("cov-better",
      OutcomeFromScalars(CoverageFromStats(stats, n, /*forward=*/true),
                         CoverageFromStats(stats, n, /*forward=*/false)));
  add("spr-better", OutcomeFromScalars(stats.spr12, stats.spr21));
  return verdicts;
}

StatusOr<PropertyVector> UtilityVector(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) {
  if (anonymization.scheme.has_value()) {
    return LossMetric::PerTupleUtility(anonymization);
  }
  return ClassSpreadLoss::PerTupleUtility(anonymization, partition);
}

}  // namespace

StatusOr<ComparisonReport> CompareAnonymizations(
    const Anonymization& first, const EquivalencePartition& first_partition,
    const Anonymization& second,
    const EquivalencePartition& second_partition,
    const ComparisonOptions& options, RunContext* run) {
  MDC_RETURN_IF_ERROR(RunContext::Check(run));
  MDC_FAILPOINT("report.compare");
  if (first.row_count() != second.row_count()) {
    return Status::InvalidArgument(
        "anonymizations cover data sets of different sizes");
  }
  if (first.row_count() == 0) {
    return Status::InvalidArgument("empty anonymizations");
  }

  std::vector<NamedProperty> properties;
  PropertyVector first_sizes = EquivalenceClassSizeVector(first_partition);
  PropertyVector second_sizes = EquivalenceClassSizeVector(second_partition);
  properties.push_back({"equivalence-class-size", first_sizes, second_sizes});

  // Diversity property: count of the tuple's sensitive value in its class,
  // negated so that higher is better (rarer value in class = harder to
  // infer).
  auto sensitive_column = ResolveSensitiveColumn(
      first.original->schema(), options.sensitive_column);
  if (sensitive_column.ok()) {
    MDC_ASSIGN_OR_RETURN(
        PropertyVector first_counts,
        SensitiveCountVector(first, first_partition, *sensitive_column));
    MDC_ASSIGN_OR_RETURN(
        PropertyVector second_counts,
        SensitiveCountVector(second, second_partition, *sensitive_column));
    properties.push_back({"sensitive-rarity",
                          first_counts.Negated("sensitive-rarity"),
                          second_counts.Negated("sensitive-rarity")});
  } else if (options.sensitive_column.has_value()) {
    return sensitive_column.status();
  }

  if (options.include_utility) {
    MDC_ASSIGN_OR_RETURN(PropertyVector first_utility,
                         UtilityVector(first, first_partition));
    MDC_ASSIGN_OR_RETURN(PropertyVector second_utility,
                         UtilityVector(second, second_partition));
    properties.push_back(
        {"per-tuple-utility", std::move(first_utility),
         std::move(second_utility)});
  }

  ComparisonReport report;
  report.first_name =
      first.algorithm.empty() ? "first" : first.algorithm;
  report.second_name =
      second.algorithm.empty() ? "second" : second.algorithm;
  if (report.first_name == report.second_name) {
    report.first_name += "#1";
    report.second_name += "#2";
  }
  report.first_bias = ComputeBias(first_sizes);
  report.second_bias = ComputeBias(second_sizes);

  PropertyVector d_max;
  if (options.include_rank) {
    d_max = PropertyVector(
        "ideal", std::vector<double>(first.row_count(),
                                     static_cast<double>(first.row_count())));
  }

  if (options.engine == CompareEngine::kPacked) {
    // Wave protocol across properties: admit (budget charges in property
    // order), evaluate batteries in parallel into per-property slots,
    // commit verdicts, counters, and the net score serially in order.
    for (size_t i = 0; i < properties.size(); ++i) {
      MDC_RETURN_IF_ERROR(RunContext::Check(run));
    }
    MDC_METRIC_INC("cmp.runs");
    std::vector<std::vector<ComparatorVerdict>> slots(properties.size());
    ThreadPool pool(ThreadPool::ResolveThreadCount(options.threads));
    pool.ParallelFor(properties.size(), [&](size_t i) {
      // The rank ideal only makes sense for the class-size property.
      const PropertyVector& ideal =
          properties[i].name == "equivalence-class-size" ? d_max
                                                         : kNoIdeal;
      slots[i] = PackedBattery(properties[i], ideal);
    });
    for (size_t i = 0; i < properties.size(); ++i) {
      report.properties.push_back(properties[i].name);
      DominanceRelation relation = DominanceRelation::kIncomparable;
      for (const ComparatorVerdict& verdict : slots[i]) {
        if (verdict.comparator == "dominance") {
          switch (verdict.outcome) {
            case ComparatorOutcome::kEquivalent:
              relation = DominanceRelation::kEqual;
              break;
            case ComparatorOutcome::kFirstBetter:
              relation = DominanceRelation::kFirstDominates;
              break;
            case ComparatorOutcome::kSecondBetter:
              relation = DominanceRelation::kSecondDominates;
              break;
            default:
              relation = DominanceRelation::kIncomparable;
              break;
          }
        }
        if (verdict.outcome == ComparatorOutcome::kFirstBetter) {
          ++report.net_score;
        }
        if (verdict.outcome == ComparatorOutcome::kSecondBetter) {
          --report.net_score;
        }
        report.verdicts.push_back(verdict);
      }
      CommitComparisonMetrics(relation, properties[i].first.size());
    }
    return report;
  }

  for (const NamedProperty& property : properties) {
    MDC_RETURN_IF_ERROR(RunContext::Check(run));
    report.properties.push_back(property.name);
    // The rank ideal only makes sense for the class-size property.
    PropertyVector ideal =
        property.name == "equivalence-class-size" ? d_max : PropertyVector();
    std::vector<std::unique_ptr<Comparator>> battery =
        StandardComparators(std::move(ideal), /*include_hypervolume=*/false);
    for (const auto& comparator : battery) {
      ComparatorOutcome outcome =
          comparator->Compare(property.first, property.second);
      if (outcome == ComparatorOutcome::kFirstBetter) ++report.net_score;
      if (outcome == ComparatorOutcome::kSecondBetter) --report.net_score;
      report.verdicts.push_back(
          {property.name, comparator->Name(), outcome});
    }
  }
  return report;
}

std::string ComparisonReport::ToText() const {
  TextTable table;
  table.SetHeader({"property", "comparator", "verdict"});
  for (const ComparatorVerdict& verdict : verdicts) {
    std::string outcome;
    switch (verdict.outcome) {
      case ComparatorOutcome::kFirstBetter:
        outcome = first_name;
        break;
      case ComparatorOutcome::kSecondBetter:
        outcome = second_name;
        break;
      default:
        outcome = ComparatorOutcomeName(verdict.outcome);
        break;
    }
    table.AddRow({verdict.property, verdict.comparator, std::move(outcome)});
  }
  std::string out = "comparison: " + first_name + " vs " + second_name + "\n";
  out += table.Render();
  out += "bias(" + first_name + "):  " + first_bias.ToString() + "\n";
  out += "bias(" + second_name + "): " + second_bias.ToString() + "\n";
  out += "net score: " + std::to_string(net_score) + " (positive favors " +
         first_name + ")\n";
  return out;
}

}  // namespace mdc
