#include "core/properties.h"

#include "privacy/privacy_model.h"

namespace mdc {

PropertyVector EquivalenceClassSizeVector(
    const EquivalencePartition& partition) {
  return PropertyVector("equivalence-class-size",
                        partition.ClassSizePerRow());
}

StatusOr<PropertyVector> SensitiveCountVector(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    std::optional<size_t> sensitive_column) {
  MDC_ASSIGN_OR_RETURN(size_t column,
                       ResolveSensitiveColumn(anonymization.release.schema(),
                                              sensitive_column));
  std::vector<double> counts(anonymization.row_count(), 0.0);
  for (size_t class_id = 0; class_id < partition.class_count(); ++class_id) {
    std::map<std::string, size_t> class_counts =
        SensitiveCounts(anonymization, partition, class_id, column);
    for (size_t row : partition.class_members(class_id)) {
      counts[row] = static_cast<double>(class_counts.at(
          anonymization.original->cell(row, column).ToString()));
    }
  }
  return PropertyVector("sensitive-count", std::move(counts));
}

PropertyVector BreachProbabilityVector(
    const EquivalencePartition& partition) {
  std::vector<double> sizes = partition.ClassSizePerRow();
  for (double& s : sizes) s = 1.0 / s;
  return PropertyVector("breach-probability", std::move(sizes));
}

PropertyVector LinkagePrivacyVector(const EquivalencePartition& partition) {
  std::vector<double> sizes = partition.ClassSizePerRow();
  for (double& s : sizes) s = 1.0 - 1.0 / s;
  return PropertyVector("linkage-privacy", std::move(sizes));
}

}  // namespace mdc
