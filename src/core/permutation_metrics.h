// The permutation model of anonymization (Ruiz, arXiv:1701.08419;
// Domingo-Ferrer et al., arXiv:2010.03502): any anonymization of a numeric
// attribute is functionally equivalent to a permutation of the original
// values plus (rank-preserving) small noise. Extracting the implicit
// permutation per attribute yields *universal, method-agnostic* per-tuple
// measures:
//
//   rank distance d_i = |rank_Y(y_i) - rank_X(x_i)|  — how far tuple i's
//   value moved in rank space.
//
// A large d_i means an attacker linking record i by rank lands far from
// the truth (protection) and equally that the released value carries
// little of the original's order information (loss). Normalized by the
// maximum displacement N-1 and averaged over attributes, the two Def.-1
// property vectors below are exactly what the packed comparison engine
// consumes, so Table-4 dominance, P_rank/P_cov/P_spr/P_hv, Pareto fronts,
// and the Theorem-1 witness search all work unchanged on perturbative
// output — and on generalization output via reverse mapping
// (NumericReleaseColumn), letting the framework rank mechanisms across
// backend families.
//
// Determinism contract: attributes are admitted serially (charging
// RunContext steps in attribute order), ranked wave-parallel into
// per-attribute slots, and committed — results and `perm.*` counters — in
// admission order, so outputs are byte-identical for any thread count.
// Ranks break ties by row index (stable sort), so the model is a pure
// function of the input columns.

#ifndef MDC_CORE_PERMUTATION_METRICS_H_
#define MDC_CORE_PERMUTATION_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"
#include "common/run_context.h"
#include "common/status.h"
#include "core/property_vector.h"

namespace mdc {

// rank[i] = position of row i in the stable ascending sort of `values`
// (ties broken by row index). The result is a permutation of 0..N-1.
std::vector<uint32_t> RankVector(const std::vector<double>& values);

// The implicit permutation sigma of the release: sigma[i] = j means the
// released value of row i occupies the rank slot that original row j's
// value held — i.e. an attacker matching release ranks against original
// ranks links row i to row j. sigma is the identity iff the anonymization
// preserved every rank. Sizes must match and be non-zero; entries must be
// finite.
StatusOr<std::vector<uint32_t>> ImplicitPermutation(
    const std::vector<double>& original,
    const std::vector<double>& anonymized);

// One attribute's permutation model.
struct PermutationAttributeModel {
  std::string name;
  std::vector<uint32_t> original_ranks;    // rank_X
  std::vector<uint32_t> anonymized_ranks;  // rank_Y
  std::vector<uint32_t> permutation;       // sigma (see above)
  std::vector<double> rank_distance;       // |rank_Y[i] - rank_X[i]|
  double max_distance = 1.0;               // max(N - 1, 1)
  double footrule = 0.0;                   // Σ_i rank_distance[i]
  double mean_normalized_distance = 0.0;   // footrule / (N · max_distance)
};

struct PermutationMetricsOptions {
  // Worker threads for per-attribute ranking; 1 = serial, <= 0 = one per
  // hardware thread. Results are identical for any value.
  int threads = 1;
};

// The full model plus the two Def.-1 property vectors (higher is better):
//   privacy[i] = mean over attributes of d_i / (N-1)   — displacement IS
//                protection under the permutation paradigm;
//   utility[i] = 1 - privacy[i]                        — displacement IS
//                information loss, oriented higher-is-better.
struct PermutationModel {
  size_t rows = 0;
  std::vector<PermutationAttributeModel> attributes;
  PropertyVector privacy;
  PropertyVector utility;
};

// Builds the model from aligned numeric columns (original_columns[a] and
// anonymized_columns[a] are the same attribute before/after). Rejects
// empty input, size mismatches, and non-finite values with a clean
// Status. Budget expiry returns the budget Status (a partial model would
// mislabel the missing attributes as zero-displacement).
StatusOr<PermutationModel> BuildPermutationModel(
    const std::vector<std::vector<double>>& original_columns,
    const std::vector<std::vector<double>>& anonymized_columns,
    const std::vector<std::string>& names,
    const PermutationMetricsOptions& options = {}, RunContext* run = nullptr);

// Reverse-mapped numeric view of one released column (the permutation
// paradigm's bridge across backend families):
//  - numeric release cells (perturbative mechanisms) are returned as-is;
//  - string label cells (generalization releases) are mapped to the mean
//    of the ORIGINAL values in the row's equivalence class, which requires
//    `partition` (InvalidArgument when absent).
// `column` must be numeric in the ORIGINAL schema.
StatusOr<std::vector<double>> NumericReleaseColumn(
    const Anonymization& anonymization,
    const EquivalencePartition* partition, size_t column);

// Convenience: the model of `anonymization` over every numeric
// quasi-identifier column of the original schema (reverse-mapping
// generalized columns through `partition`). InvalidArgument when no
// numeric QI column exists.
StatusOr<PermutationModel> PermutationModelFor(
    const Anonymization& anonymization,
    const EquivalencePartition* partition,
    const PermutationMetricsOptions& options = {}, RunContext* run = nullptr);

// Aligned text table of per-attribute footrule / mean normalized
// displacement plus the per-tuple vector summary — the CLI and the repro
// driver print exactly this.
std::string PermutationModelSummary(const PermutationModel& model);

}  // namespace mdc

#endif  // MDC_CORE_PERMUTATION_METRICS_H_
