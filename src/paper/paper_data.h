// The paper's running example, exactly: Table 1's microdata, the
// hierarchies and schemes behind Tables 2–3, and the property vectors the
// paper prints. The repro binaries and reproduction tests are built on
// these fixtures.
//
// Column order: 0 = "Zip Code" (string, QI), 1 = "Age" (int, QI),
// 2 = "Marital Status" (string, sensitive).
//
// Scheme levels (see DESIGN.md §5 for why T4 uses a different age chain):
//   T3a: zip suffix level 1, age chain A level 1 (width 10 @ 5), marital 1
//   T3b: zip suffix level 2, age chain A level 2 (width 20 @ 15), marital 1
//   T4 : zip suffix level 3, age chain B level 1 (width 20 @ 0), marital 2

#ifndef MDC_PAPER_PAPER_DATA_H_
#define MDC_PAPER_PAPER_DATA_H_

#include <memory>

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"
#include "core/property_vector.h"
#include "hierarchy/interval_hierarchy.h"
#include "hierarchy/suffix_hierarchy.h"
#include "hierarchy/taxonomy_hierarchy.h"

namespace mdc::paper {

inline constexpr size_t kZipColumn = 0;
inline constexpr size_t kAgeColumn = 1;
inline constexpr size_t kMaritalColumn = 2;

StatusOr<Schema> Table1Schema();
StatusOr<std::shared_ptr<const Dataset>> Table1();

// Marital-status taxonomy: * -> {Married, Not Married} -> leaves.
std::shared_ptr<const TaxonomyHierarchy> MaritalTaxonomy();
std::shared_ptr<const SuffixHierarchy> ZipHierarchy();
std::shared_ptr<const IntervalHierarchy> AgeHierarchyA();  // 10@5, 20@15.
std::shared_ptr<const IntervalHierarchy> AgeHierarchyB();  // 20@0.

// zip + age chain A/B + marital, bound to the Table-1 columns.
StatusOr<HierarchySet> HierarchySetA();
StatusOr<HierarchySet> HierarchySetB();

// The three anonymizations of Tables 2–3.
StatusOr<Anonymization> MakeT3a();
StatusOr<Anonymization> MakeT3b();
StatusOr<Anonymization> MakeT4();

// Property vectors as printed in the paper.
PropertyVector ExpectedClassSizesT3a();      // (3,3,3,3,4,4,4,3,3,4)
PropertyVector ExpectedClassSizesT3b();      // (3,7,7,3,7,7,7,3,7,7)
PropertyVector ExpectedClassSizesT4();       // (4,6,4,4,6,6,6,4,6,6)
PropertyVector ExpectedSensitiveCountsT3a(); // (2,2,1,2,2,1,2,1,2,1)

}  // namespace mdc::paper

#endif  // MDC_PAPER_PAPER_DATA_H_
