#include "paper/paper_data.h"

#include "anonymize/generalizer.h"

namespace mdc::paper {
namespace {

struct Table1Row {
  const char* zip;
  int64_t age;
  const char* marital;
};

// Table 1 of the paper, rows 1..10.
constexpr Table1Row kTable1Rows[] = {
    {"13053", 28, "CF-Spouse"},      {"13268", 41, "Separated"},
    {"13268", 39, "Never Married"},  {"13053", 26, "CF-Spouse"},
    {"13253", 50, "Divorced"},       {"13253", 55, "Spouse Absent"},
    {"13250", 49, "Divorced"},       {"13052", 31, "Spouse Present"},
    {"13269", 42, "Separated"},      {"13250", 47, "Separated"},
};

StatusOr<Anonymization> ApplyLevels(const HierarchySet& hierarchies,
                                    std::vector<int> levels,
                                    const std::string& name) {
  MDC_ASSIGN_OR_RETURN(auto data, Table1());
  MDC_ASSIGN_OR_RETURN(
      GeneralizationScheme scheme,
      GeneralizationScheme::Create(hierarchies, std::move(levels)));
  return Generalizer::Apply(data, scheme, name);
}

}  // namespace

StatusOr<Schema> Table1Schema() {
  return Schema::Create({
      {"Zip Code", AttributeType::kString, AttributeRole::kQuasiIdentifier},
      {"Age", AttributeType::kInt, AttributeRole::kQuasiIdentifier},
      // Dual-role in the paper: generalized in the release (Tables 2-3)
      // AND the sensitive attribute of the l-diversity example. The role
      // is quasi-identifier so generalization applies; privacy models are
      // pointed at this column explicitly (kMaritalColumn).
      {"Marital Status", AttributeType::kString,
       AttributeRole::kQuasiIdentifier},
  });
}

StatusOr<std::shared_ptr<const Dataset>> Table1() {
  MDC_ASSIGN_OR_RETURN(Schema schema, Table1Schema());
  auto data = std::make_shared<Dataset>(std::move(schema));
  for (const Table1Row& row : kTable1Rows) {
    MDC_RETURN_IF_ERROR(data->AppendRow(
        {Value(row.zip), Value(row.age), Value(row.marital)}));
  }
  return std::shared_ptr<const Dataset>(std::move(data));
}

std::shared_ptr<const TaxonomyHierarchy> MaritalTaxonomy() {
  TaxonomyHierarchy::Builder builder;
  builder.Add("Married", "*")
      .Add("Not Married", "*")
      .Add("CF-Spouse", "Married")
      .Add("Spouse Present", "Married")
      .Add("Separated", "Not Married")
      .Add("Never Married", "Not Married")
      .Add("Divorced", "Not Married")
      .Add("Spouse Absent", "Not Married");
  auto tree = builder.Build();
  MDC_CHECK_MSG(tree.ok(), "marital taxonomy must build");
  return std::make_shared<const TaxonomyHierarchy>(std::move(tree).value());
}

std::shared_ptr<const SuffixHierarchy> ZipHierarchy() {
  auto hierarchy = SuffixHierarchy::Create(5);
  MDC_CHECK_MSG(hierarchy.ok(), "zip hierarchy must build");
  return std::make_shared<const SuffixHierarchy>(std::move(hierarchy).value());
}

std::shared_ptr<const IntervalHierarchy> AgeHierarchyA() {
  auto hierarchy = IntervalHierarchy::Create({{5.0, 10.0}, {15.0, 20.0}});
  MDC_CHECK_MSG(hierarchy.ok(), "age chain A must build");
  return std::make_shared<const IntervalHierarchy>(
      std::move(hierarchy).value());
}

std::shared_ptr<const IntervalHierarchy> AgeHierarchyB() {
  auto hierarchy = IntervalHierarchy::Create({{0.0, 20.0}});
  MDC_CHECK_MSG(hierarchy.ok(), "age chain B must build");
  return std::make_shared<const IntervalHierarchy>(
      std::move(hierarchy).value());
}

StatusOr<HierarchySet> HierarchySetA() {
  HierarchySet hierarchies;
  MDC_RETURN_IF_ERROR(hierarchies.Bind(kZipColumn, ZipHierarchy()));
  MDC_RETURN_IF_ERROR(hierarchies.Bind(kAgeColumn, AgeHierarchyA()));
  MDC_RETURN_IF_ERROR(hierarchies.Bind(kMaritalColumn, MaritalTaxonomy()));
  return hierarchies;
}

StatusOr<HierarchySet> HierarchySetB() {
  HierarchySet hierarchies;
  MDC_RETURN_IF_ERROR(hierarchies.Bind(kZipColumn, ZipHierarchy()));
  MDC_RETURN_IF_ERROR(hierarchies.Bind(kAgeColumn, AgeHierarchyB()));
  MDC_RETURN_IF_ERROR(hierarchies.Bind(kMaritalColumn, MaritalTaxonomy()));
  return hierarchies;
}

StatusOr<Anonymization> MakeT3a() {
  MDC_ASSIGN_OR_RETURN(HierarchySet hierarchies, HierarchySetA());
  return ApplyLevels(hierarchies, {1, 1, 1}, "paper-T3a");
}

StatusOr<Anonymization> MakeT3b() {
  MDC_ASSIGN_OR_RETURN(HierarchySet hierarchies, HierarchySetA());
  return ApplyLevels(hierarchies, {2, 2, 1}, "paper-T3b");
}

StatusOr<Anonymization> MakeT4() {
  MDC_ASSIGN_OR_RETURN(HierarchySet hierarchies, HierarchySetB());
  return ApplyLevels(hierarchies, {3, 1, 2}, "paper-T4");
}

PropertyVector ExpectedClassSizesT3a() {
  return PropertyVector("equivalence-class-size",
                        {3, 3, 3, 3, 4, 4, 4, 3, 3, 4});
}

PropertyVector ExpectedClassSizesT3b() {
  return PropertyVector("equivalence-class-size",
                        {3, 7, 7, 3, 7, 7, 7, 3, 7, 7});
}

PropertyVector ExpectedClassSizesT4() {
  return PropertyVector("equivalence-class-size",
                        {4, 6, 4, 4, 6, 6, 6, 4, 6, 6});
}

PropertyVector ExpectedSensitiveCountsT3a() {
  return PropertyVector("sensitive-count", {2, 2, 1, 2, 2, 1, 2, 1, 2, 1});
}

}  // namespace mdc::paper
