// t-closeness (Li, Li, Venkatasubramanian, ICDE 2007): the distribution of
// the sensitive attribute within every active equivalence class must be
// within Earth Mover's Distance t of its distribution in the whole table.
//
// Two ground distances are implemented, following the original paper:
//  - kEqual: every pair of distinct values is at distance 1; EMD reduces
//    to total variation distance, (1/2) * Σ |p_i - q_i|.
//  - kOrdered: values are equally spaced on a line in sorted order; EMD is
//    (1/(m-1)) * Σ_i |Σ_{j<=i} (p_j - q_j)| (the cumulative-sum formula).

#ifndef MDC_PRIVACY_T_CLOSENESS_H_
#define MDC_PRIVACY_T_CLOSENESS_H_

#include <memory>
#include <optional>

#include "hierarchy/taxonomy_hierarchy.h"
#include "privacy/privacy_model.h"

namespace mdc {

enum class GroundDistance { kEqual, kOrdered };

class TCloseness final : public PrivacyModel {
 public:
  TCloseness(double t, GroundDistance ground = GroundDistance::kEqual,
             std::optional<size_t> sensitive_column = std::nullopt)
      : t_(t), ground_(ground), sensitive_column_(sensitive_column) {
    MDC_CHECK_GE(t, 0.0);
    MDC_CHECK_LE(t, 1.0);
  }

  std::string Name() const override;
  bool Satisfies(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  // Achieved t: the maximum per-class EMD (0 when nothing is active).
  double Measure(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  bool HigherIsStronger() const override { return false; }

 private:
  double t_;
  GroundDistance ground_;
  std::optional<size_t> sensitive_column_;
};

// EMD between two discrete distributions given as parallel probability
// vectors over the same (sorted) support. Both must sum to ~1.
double EarthMoversDistance(const std::vector<double>& p,
                           const std::vector<double>& q,
                           GroundDistance ground);

// Per-active-class EMD to the global sensitive distribution, in class
// order (shared with the property extractors).
StatusOr<std::vector<double>> EmdPerClass(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    GroundDistance ground, std::optional<size_t> sensitive_column);

// t-closeness under the HIERARCHICAL ground distance of Li et al.: the
// distance between two sensitive values is height(LCA)/height(taxonomy).
// Requires the sensitive attribute's taxonomy.
class TClosenessHierarchical final : public PrivacyModel {
 public:
  TClosenessHierarchical(double t,
                         std::shared_ptr<const TaxonomyHierarchy> taxonomy,
                         std::optional<size_t> sensitive_column =
                             std::nullopt)
      : t_(t), taxonomy_(std::move(taxonomy)),
        sensitive_column_(sensitive_column) {
    MDC_CHECK_GE(t, 0.0);
    MDC_CHECK_LE(t, 1.0);
    MDC_CHECK(taxonomy_ != nullptr);
  }

  std::string Name() const override;
  bool Satisfies(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  double Measure(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  bool HigherIsStronger() const override { return false; }

 private:
  double t_;
  std::shared_ptr<const TaxonomyHierarchy> taxonomy_;
  std::optional<size_t> sensitive_column_;
};

// Per-active-class hierarchical EMD to the global distribution.
StatusOr<std::vector<double>> HierarchicalEmdPerClass(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    const TaxonomyHierarchy& taxonomy,
    std::optional<size_t> sensitive_column);

}  // namespace mdc

#endif  // MDC_PRIVACY_T_CLOSENESS_H_
