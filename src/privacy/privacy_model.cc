#include "privacy/privacy_model.h"

namespace mdc {

StatusOr<size_t> ResolveSensitiveColumn(const Schema& schema,
                                        std::optional<size_t> requested) {
  if (requested.has_value()) {
    if (*requested >= schema.attribute_count()) {
      return Status::OutOfRange("sensitive column index out of range");
    }
    return *requested;
  }
  std::vector<size_t> sensitive = schema.SensitiveIndices();
  if (sensitive.empty()) {
    return Status::FailedPrecondition(
        "schema has no sensitive attribute; specify the column explicitly");
  }
  if (sensitive.size() > 1) {
    return Status::FailedPrecondition(
        "schema has several sensitive attributes; specify the column "
        "explicitly");
  }
  return sensitive[0];
}

bool ClassIsActive(const EquivalencePartition& partition, size_t class_id,
                   const std::vector<bool>& suppressed) {
  for (size_t row : partition.class_members(class_id)) {
    if (!suppressed[row]) return true;
  }
  return false;
}

std::map<std::string, size_t> SensitiveCounts(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    size_t class_id, size_t sensitive_column) {
  std::map<std::string, size_t> counts;
  for (size_t row : partition.class_members(class_id)) {
    ++counts[anonymization.original->cell(row, sensitive_column).ToString()];
  }
  return counts;
}

std::map<std::string, size_t> GlobalSensitiveCounts(
    const Anonymization& anonymization, size_t sensitive_column) {
  std::map<std::string, size_t> counts;
  for (size_t row = 0; row < anonymization.original->row_count(); ++row) {
    ++counts[anonymization.original->cell(row, sensitive_column).ToString()];
  }
  return counts;
}

}  // namespace mdc
