// p-sensitive k-anonymity (Truta & Vinay, ICDE-W 2006): the release must
// be k-anonymous AND every active equivalence class must contain at least
// p distinct sensitive values.

#ifndef MDC_PRIVACY_P_SENSITIVE_H_
#define MDC_PRIVACY_P_SENSITIVE_H_

#include <optional>

#include "privacy/privacy_model.h"

namespace mdc {

class PSensitiveKAnonymity final : public PrivacyModel {
 public:
  PSensitiveKAnonymity(int p, int k,
                       std::optional<size_t> sensitive_column = std::nullopt)
      : p_(p), k_(k), sensitive_column_(sensitive_column) {
    MDC_CHECK_GE(p, 1);
    MDC_CHECK_GE(k, 1);
  }

  std::string Name() const override {
    return std::to_string(p_) + "-sensitive-" + std::to_string(k_) +
           "-anonymity";
  }
  bool Satisfies(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  // Achieved p: minimum distinct sensitive count over active classes
  // (infinite when nothing is active).
  double Measure(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  bool HigherIsStronger() const override { return true; }

 private:
  int p_;
  int k_;
  std::optional<size_t> sensitive_column_;
};

}  // namespace mdc

#endif  // MDC_PRIVACY_P_SENSITIVE_H_
