#include "privacy/k_anonymity.h"

namespace mdc {

bool KAnonymity::Satisfies(const Anonymization& anonymization,
                           const EquivalencePartition& partition) const {
  double measure = Measure(anonymization, partition);
  if (measure == 0.0) {
    // No active class: vacuously satisfied (everything is suppressed).
    return true;
  }
  return measure >= static_cast<double>(k_);
}

double KAnonymity::Measure(const Anonymization& anonymization,
                           const EquivalencePartition& partition) const {
  return static_cast<double>(
      partition.MinClassSizeExempting(anonymization.suppressed));
}

}  // namespace mdc
