// Base interface for privacy models and shared per-class statistics.
//
// A PrivacyModel decides whether a released table satisfies its guarantee
// and reports the *achieved* scalar parameter (k, ℓ, t, p, …). Scalar
// parameters are exactly the "aggregate quality indices" the paper argues
// are insufficient — the core/ module layers property vectors on top of
// the same per-class statistics computed here.
//
// Convention: classes consisting entirely of suppressed rows are exempt
// from every model's check (their quasi-identifiers are fully generalized,
// so no linking attack applies; the paper keeps such rows in the release).

#ifndef MDC_PRIVACY_PRIVACY_MODEL_H_
#define MDC_PRIVACY_PRIVACY_MODEL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "anonymize/equivalence.h"
#include "anonymize/generalizer.h"

namespace mdc {

class PrivacyModel {
 public:
  virtual ~PrivacyModel() = default;

  // "k-anonymity(3)", "distinct-l-diversity(2)", ...
  virtual std::string Name() const = 0;

  // Whether the release satisfies the model's guarantee.
  virtual bool Satisfies(const Anonymization& anonymization,
                         const EquivalencePartition& partition) const = 0;

  // The achieved parameter value (the k/ℓ/t/p the release actually
  // provides). Whether larger means stronger depends on the model; see
  // HigherIsStronger().
  virtual double Measure(const Anonymization& anonymization,
                         const EquivalencePartition& partition) const = 0;

  // True for k/ℓ/p-style parameters, false for t-closeness-style bounds.
  virtual bool HigherIsStronger() const = 0;
};

// Resolves the sensitive column: `requested` if set, otherwise the schema's
// single kSensitive attribute (error if zero or several).
StatusOr<size_t> ResolveSensitiveColumn(const Schema& schema,
                                        std::optional<size_t> requested);

// True if at least one member row of the class is not suppressed.
bool ClassIsActive(const EquivalencePartition& partition, size_t class_id,
                   const std::vector<bool>& suppressed);

// Counts of each sensitive value within one class. Values are read from
// the ORIGINAL data set: an attribute may be generalized in the release
// (the paper's Tables 2–3 generalize Marital Status) yet still be the
// sensitive attribute whose true distribution diversity models reason
// about.
std::map<std::string, size_t> SensitiveCounts(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    size_t class_id, size_t sensitive_column);

// Counts over the whole data set (the global distribution t-closeness
// compares against).
std::map<std::string, size_t> GlobalSensitiveCounts(
    const Anonymization& anonymization, size_t sensitive_column);

}  // namespace mdc

#endif  // MDC_PRIVACY_PRIVACY_MODEL_H_
