#include "privacy/personalized.h"

#include <algorithm>

namespace mdc {

PersonalizedPrivacy::PersonalizedPrivacy(
    std::shared_ptr<const TaxonomyHierarchy> taxonomy,
    std::vector<std::string> guarding_nodes, std::vector<double> thresholds,
    std::optional<size_t> sensitive_column)
    : taxonomy_(std::move(taxonomy)),
      guarding_nodes_(std::move(guarding_nodes)),
      thresholds_(std::move(thresholds)),
      sensitive_column_(sensitive_column) {
  MDC_CHECK(taxonomy_ != nullptr);
  MDC_CHECK_EQ(guarding_nodes_.size(), thresholds_.size());
}

StatusOr<std::vector<double>> PersonalizedPrivacy::BreachProbabilities(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  if (guarding_nodes_.size() != anonymization.row_count()) {
    return Status::InvalidArgument(
        "guarding-node vector arity does not match the release");
  }
  MDC_ASSIGN_OR_RETURN(size_t column,
                       ResolveSensitiveColumn(anonymization.release.schema(),
                                              sensitive_column_));
  std::vector<double> breach(anonymization.row_count(), 0.0);
  for (size_t row = 0; row < anonymization.row_count(); ++row) {
    if (anonymization.suppressed[row]) continue;
    ClassSpan members =
        partition.class_members(partition.ClassOfRow(row));
    size_t guarded = 0;
    for (size_t member : members) {
      const Value& sensitive = anonymization.original->cell(member, column);
      if (taxonomy_->Covers(guarding_nodes_[row], sensitive)) ++guarded;
    }
    breach[row] =
        static_cast<double>(guarded) / static_cast<double>(members.size());
  }
  return breach;
}

bool PersonalizedPrivacy::Satisfies(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  auto breach = BreachProbabilities(anonymization, partition);
  MDC_CHECK(breach.ok());
  for (size_t row = 0; row < breach->size(); ++row) {
    if (anonymization.suppressed[row]) continue;
    if ((*breach)[row] > thresholds_[row] + 1e-12) return false;
  }
  return true;
}

double PersonalizedPrivacy::Measure(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  auto breach = BreachProbabilities(anonymization, partition);
  MDC_CHECK(breach.ok());
  if (breach->empty()) return 0.0;
  return *std::max_element(breach->begin(), breach->end());
}

}  // namespace mdc
