#include "privacy/t_closeness.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace mdc {

double EarthMoversDistance(const std::vector<double>& p,
                           const std::vector<double>& q,
                           GroundDistance ground) {
  MDC_CHECK_EQ(p.size(), q.size());
  MDC_CHECK(!p.empty());
  if (p.size() == 1) return 0.0;
  if (ground == GroundDistance::kEqual) {
    double sum = 0.0;
    for (size_t i = 0; i < p.size(); ++i) sum += std::abs(p[i] - q[i]);
    return 0.5 * sum;
  }
  // Ordered: cumulative formula with unit spacing normalized by (m - 1).
  double cumulative = 0.0;
  double sum = 0.0;
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    cumulative += p[i] - q[i];
    sum += std::abs(cumulative);
  }
  return sum / static_cast<double>(p.size() - 1);
}

StatusOr<std::vector<double>> EmdPerClass(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    GroundDistance ground, std::optional<size_t> sensitive_column) {
  MDC_ASSIGN_OR_RETURN(size_t column,
                       ResolveSensitiveColumn(anonymization.release.schema(),
                                              sensitive_column));
  // Global support (std::map keys are sorted — the "ordered" ground
  // distance uses this order).
  std::map<std::string, size_t> global =
      GlobalSensitiveCounts(anonymization, column);
  std::vector<std::string> support;
  std::vector<double> global_p;
  double total = static_cast<double>(anonymization.release.row_count());
  for (const auto& [value, count] : global) {
    support.push_back(value);
    global_p.push_back(static_cast<double>(count) / total);
  }

  std::vector<double> out;
  for (size_t class_id = 0; class_id < partition.class_count(); ++class_id) {
    if (!ClassIsActive(partition, class_id, anonymization.suppressed)) {
      continue;
    }
    std::map<std::string, size_t> counts =
        SensitiveCounts(anonymization, partition, class_id, column);
    double class_total =
        static_cast<double>(partition.ClassSize(class_id));
    std::vector<double> class_p(support.size(), 0.0);
    for (size_t i = 0; i < support.size(); ++i) {
      auto it = counts.find(support[i]);
      if (it != counts.end()) {
        class_p[i] = static_cast<double>(it->second) / class_total;
      }
    }
    out.push_back(EarthMoversDistance(class_p, global_p, ground));
  }
  return out;
}

StatusOr<std::vector<double>> HierarchicalEmdPerClass(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    const TaxonomyHierarchy& taxonomy,
    std::optional<size_t> sensitive_column) {
  MDC_ASSIGN_OR_RETURN(size_t column,
                       ResolveSensitiveColumn(anonymization.release.schema(),
                                              sensitive_column));
  std::map<std::string, size_t> global =
      GlobalSensitiveCounts(anonymization, column);
  std::map<std::string, double> global_p;
  double total = static_cast<double>(anonymization.release.row_count());
  for (const auto& [value, count] : global) {
    global_p[value] = static_cast<double>(count) / total;
  }

  std::vector<double> out;
  for (size_t class_id = 0; class_id < partition.class_count(); ++class_id) {
    if (!ClassIsActive(partition, class_id, anonymization.suppressed)) {
      continue;
    }
    std::map<std::string, size_t> counts =
        SensitiveCounts(anonymization, partition, class_id, column);
    std::map<std::string, double> class_p;
    double class_total = static_cast<double>(partition.ClassSize(class_id));
    for (const auto& [value, count] : counts) {
      class_p[value] = static_cast<double>(count) / class_total;
    }
    MDC_ASSIGN_OR_RETURN(double emd,
                         taxonomy.HierarchicalEmd(class_p, global_p));
    out.push_back(emd);
  }
  return out;
}

std::string TClosenessHierarchical::Name() const {
  return "t-closeness(" + FormatCompact(t_) + ",hierarchical)";
}

bool TClosenessHierarchical::Satisfies(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  return Measure(anonymization, partition) <= t_ + 1e-12;
}

double TClosenessHierarchical::Measure(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  auto emds = HierarchicalEmdPerClass(anonymization, partition, *taxonomy_,
                                      sensitive_column_);
  MDC_CHECK_MSG(emds.ok(),
                "hierarchical t-closeness misconfigured (sensitive column "
                "or taxonomy mismatch)");
  if (emds->empty()) return 0.0;
  return *std::max_element(emds->begin(), emds->end());
}

std::string TCloseness::Name() const {
  return std::string("t-closeness(") + FormatCompact(t_) + "," +
         (ground_ == GroundDistance::kEqual ? "equal" : "ordered") + ")";
}

bool TCloseness::Satisfies(const Anonymization& anonymization,
                           const EquivalencePartition& partition) const {
  return Measure(anonymization, partition) <= t_ + 1e-12;
}

double TCloseness::Measure(const Anonymization& anonymization,
                           const EquivalencePartition& partition) const {
  auto emds = EmdPerClass(anonymization, partition, ground_,
                          sensitive_column_);
  MDC_CHECK(emds.ok());
  if (emds->empty()) return 0.0;
  return *std::max_element(emds->begin(), emds->end());
}

}  // namespace mdc
