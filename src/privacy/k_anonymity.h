// k-anonymity (Samarati & Sweeney): every active equivalence class must
// contain at least k tuples. The achieved parameter is the minimum active
// class size — the scalar P_k-anon(s) = min(s) index of the paper's §3.

#ifndef MDC_PRIVACY_K_ANONYMITY_H_
#define MDC_PRIVACY_K_ANONYMITY_H_

#include "privacy/privacy_model.h"

namespace mdc {

class KAnonymity final : public PrivacyModel {
 public:
  explicit KAnonymity(int k) : k_(k) { MDC_CHECK_GE(k, 1); }

  std::string Name() const override {
    return "k-anonymity(" + std::to_string(k_) + ")";
  }
  bool Satisfies(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  // Minimum active class size (0 when every row is suppressed).
  double Measure(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  bool HigherIsStronger() const override { return true; }

  int k() const { return k_; }

 private:
  int k_;
};

}  // namespace mdc

#endif  // MDC_PRIVACY_K_ANONYMITY_H_
