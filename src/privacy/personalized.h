// Personalized privacy (after Xiao & Tao, SIGMOD 2006).
//
// Each individual specifies a *guarding node* — a label in the sensitive
// attribute's taxonomy — and a tolerated breach probability. The breach
// probability of a tuple is the fraction of its equivalence class whose
// sensitive value falls under the tuple's guarding node: the adversary's
// chance of (correctly) inferring that the individual's value lies in the
// guarded subtree. The paper (§2) points out that even this personalized
// model exhibits anonymization bias, since actual breach probabilities
// vary across tuples; BreachProbabilities() is exactly the per-tuple
// vector the paper's framework compares.

#ifndef MDC_PRIVACY_PERSONALIZED_H_
#define MDC_PRIVACY_PERSONALIZED_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hierarchy/taxonomy_hierarchy.h"
#include "privacy/privacy_model.h"

namespace mdc {

class PersonalizedPrivacy final : public PrivacyModel {
 public:
  // `guarding_nodes[i]` is the taxonomy label guarded by row i;
  // `thresholds[i]` the tolerated breach probability. Both must have one
  // entry per row of the data set the model is evaluated on.
  PersonalizedPrivacy(std::shared_ptr<const TaxonomyHierarchy> taxonomy,
                      std::vector<std::string> guarding_nodes,
                      std::vector<double> thresholds,
                      std::optional<size_t> sensitive_column = std::nullopt);

  std::string Name() const override { return "personalized-privacy"; }
  bool Satisfies(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  // Achieved bound: maximum breach probability over non-suppressed rows.
  double Measure(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  bool HigherIsStronger() const override { return false; }

  // Per-row breach probabilities (suppressed rows get 0: their class link
  // is severed). Fails if the arity does not match the release.
  StatusOr<std::vector<double>> BreachProbabilities(
      const Anonymization& anonymization,
      const EquivalencePartition& partition) const;

 private:
  std::shared_ptr<const TaxonomyHierarchy> taxonomy_;
  std::vector<std::string> guarding_nodes_;
  std::vector<double> thresholds_;
  std::optional<size_t> sensitive_column_;
};

}  // namespace mdc

#endif  // MDC_PRIVACY_PERSONALIZED_H_
