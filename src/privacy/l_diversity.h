// ℓ-diversity (Machanavajjhala et al., ICDE 2006) in its three standard
// instantiations: distinct, entropy, and recursive (c,ℓ). Each model also
// exposes the per-class statistic it is built on, which core/properties.h
// turns into the paper's property vectors.

#ifndef MDC_PRIVACY_L_DIVERSITY_H_
#define MDC_PRIVACY_L_DIVERSITY_H_

#include <optional>

#include "privacy/privacy_model.h"

namespace mdc {

// Distinct ℓ-diversity: every active class has >= ℓ distinct sensitive
// values. Measure = minimum distinct count.
class DistinctLDiversity final : public PrivacyModel {
 public:
  DistinctLDiversity(int l, std::optional<size_t> sensitive_column =
                                std::nullopt)
      : l_(l), sensitive_column_(sensitive_column) {
    MDC_CHECK_GE(l, 1);
  }

  std::string Name() const override {
    return "distinct-l-diversity(" + std::to_string(l_) + ")";
  }
  bool Satisfies(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  double Measure(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  bool HigherIsStronger() const override { return true; }

 private:
  int l_;
  std::optional<size_t> sensitive_column_;
};

// Entropy ℓ-diversity: every active class has entropy >= log(ℓ).
// Measure = min over classes of exp(H(class)) — the "effective ℓ".
class EntropyLDiversity final : public PrivacyModel {
 public:
  EntropyLDiversity(double l, std::optional<size_t> sensitive_column =
                                  std::nullopt)
      : l_(l), sensitive_column_(sensitive_column) {
    MDC_CHECK_GE(l, 1.0);
  }

  std::string Name() const override;
  bool Satisfies(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  double Measure(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  bool HigherIsStronger() const override { return true; }

 private:
  double l_;
  std::optional<size_t> sensitive_column_;
};

// Recursive (c,ℓ)-diversity: in every active class, with sensitive value
// counts r_1 >= r_2 >= ... >= r_m, require r_1 < c * (r_ℓ + ... + r_m).
// Measure = the largest ℓ' (>= 1) such that every active class satisfies
// (c,ℓ')-diversity.
class RecursiveCLDiversity final : public PrivacyModel {
 public:
  RecursiveCLDiversity(double c, int l,
                       std::optional<size_t> sensitive_column = std::nullopt)
      : c_(c), l_(l), sensitive_column_(sensitive_column) {
    MDC_CHECK_GT(c, 0.0);
    MDC_CHECK_GE(l, 1);
  }

  std::string Name() const override;
  bool Satisfies(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  double Measure(const Anonymization& anonymization,
                 const EquivalencePartition& partition) const override;
  bool HigherIsStronger() const override { return true; }

 private:
  double c_;
  int l_;
  std::optional<size_t> sensitive_column_;
};

// Per-class distinct sensitive-value counts for active classes, in class
// order (shared by the models above and by property extractors).
StatusOr<std::vector<size_t>> DistinctSensitivePerClass(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    std::optional<size_t> sensitive_column);

// Per-class sensitive-value entropy (natural log) for active classes.
StatusOr<std::vector<double>> SensitiveEntropyPerClass(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    std::optional<size_t> sensitive_column);

}  // namespace mdc

#endif  // MDC_PRIVACY_L_DIVERSITY_H_
