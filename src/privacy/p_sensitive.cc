#include "privacy/p_sensitive.h"

#include <algorithm>
#include <limits>

#include "privacy/k_anonymity.h"
#include "privacy/l_diversity.h"

namespace mdc {

bool PSensitiveKAnonymity::Satisfies(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  if (!KAnonymity(k_).Satisfies(anonymization, partition)) return false;
  return Measure(anonymization, partition) >= static_cast<double>(p_);
}

double PSensitiveKAnonymity::Measure(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  // Identical statistic to distinct l-diversity: min distinct sensitive
  // values over active classes.
  auto distinct =
      DistinctSensitivePerClass(anonymization, partition, sensitive_column_);
  MDC_CHECK(distinct.ok());
  if (distinct->empty()) return std::numeric_limits<double>::infinity();
  return static_cast<double>(
      *std::min_element(distinct->begin(), distinct->end()));
}

}  // namespace mdc
