#include "privacy/l_diversity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace mdc {
namespace {

// Per-class sensitive counts (descending) for active classes.
std::vector<std::vector<size_t>> CountVectorsPerActiveClass(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    std::optional<size_t> sensitive_column) {
  auto column = ResolveSensitiveColumn(anonymization.release.schema(),
                                       sensitive_column);
  MDC_CHECK_MSG(column.ok(),
                "l-diversity model used without a resolvable sensitive "
                "column");
  std::vector<std::vector<size_t>> out;
  for (size_t class_id = 0; class_id < partition.class_count(); ++class_id) {
    if (!ClassIsActive(partition, class_id, anonymization.suppressed)) {
      continue;
    }
    std::map<std::string, size_t> counts =
        SensitiveCounts(anonymization, partition, class_id, *column);
    std::vector<size_t> sorted;
    sorted.reserve(counts.size());
    for (const auto& [value, count] : counts) sorted.push_back(count);
    std::sort(sorted.begin(), sorted.end(), std::greater<size_t>());
    out.push_back(std::move(sorted));
  }
  return out;
}

}  // namespace

StatusOr<std::vector<size_t>> DistinctSensitivePerClass(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    std::optional<size_t> sensitive_column) {
  MDC_ASSIGN_OR_RETURN(size_t column,
                       ResolveSensitiveColumn(anonymization.release.schema(),
                                              sensitive_column));
  std::vector<size_t> out;
  for (size_t class_id = 0; class_id < partition.class_count(); ++class_id) {
    if (!ClassIsActive(partition, class_id, anonymization.suppressed)) {
      continue;
    }
    out.push_back(
        SensitiveCounts(anonymization, partition, class_id, column).size());
  }
  return out;
}

StatusOr<std::vector<double>> SensitiveEntropyPerClass(
    const Anonymization& anonymization, const EquivalencePartition& partition,
    std::optional<size_t> sensitive_column) {
  MDC_ASSIGN_OR_RETURN(size_t column,
                       ResolveSensitiveColumn(anonymization.release.schema(),
                                              sensitive_column));
  std::vector<double> out;
  for (size_t class_id = 0; class_id < partition.class_count(); ++class_id) {
    if (!ClassIsActive(partition, class_id, anonymization.suppressed)) {
      continue;
    }
    std::map<std::string, size_t> counts =
        SensitiveCounts(anonymization, partition, class_id, column);
    double total = 0.0;
    for (const auto& [value, count] : counts) {
      total += static_cast<double>(count);
    }
    double entropy = 0.0;
    for (const auto& [value, count] : counts) {
      double p = static_cast<double>(count) / total;
      entropy -= p * std::log(p);
    }
    out.push_back(entropy);
  }
  return out;
}

bool DistinctLDiversity::Satisfies(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  return Measure(anonymization, partition) >= static_cast<double>(l_);
}

double DistinctLDiversity::Measure(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  auto distinct =
      DistinctSensitivePerClass(anonymization, partition, sensitive_column_);
  MDC_CHECK(distinct.ok());
  if (distinct->empty()) return std::numeric_limits<double>::infinity();
  return static_cast<double>(
      *std::min_element(distinct->begin(), distinct->end()));
}

std::string EntropyLDiversity::Name() const {
  return "entropy-l-diversity(" + FormatCompact(l_) + ")";
}

bool EntropyLDiversity::Satisfies(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  return Measure(anonymization, partition) >= l_ - 1e-12;
}

double EntropyLDiversity::Measure(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  auto entropies =
      SensitiveEntropyPerClass(anonymization, partition, sensitive_column_);
  MDC_CHECK(entropies.ok());
  if (entropies->empty()) return std::numeric_limits<double>::infinity();
  double min_entropy =
      *std::min_element(entropies->begin(), entropies->end());
  return std::exp(min_entropy);
}

std::string RecursiveCLDiversity::Name() const {
  return "recursive-(" + FormatCompact(c_) + "," + std::to_string(l_) +
         ")-diversity";
}

bool RecursiveCLDiversity::Satisfies(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  return Measure(anonymization, partition) >= static_cast<double>(l_);
}

double RecursiveCLDiversity::Measure(
    const Anonymization& anonymization,
    const EquivalencePartition& partition) const {
  std::vector<std::vector<size_t>> classes =
      CountVectorsPerActiveClass(anonymization, partition, sensitive_column_);
  if (classes.empty()) return std::numeric_limits<double>::infinity();

  // For one class, the largest l' satisfying r_1 < c * sum_{i>=l'} r_i.
  auto max_l_for_class = [&](const std::vector<size_t>& counts) -> int {
    const size_t m = counts.size();
    double r1 = static_cast<double>(counts[0]);
    double tail = 0.0;
    int best = 0;
    // Walk l' from m down to 1, accumulating the tail sum.
    for (size_t lp = m; lp >= 1; --lp) {
      tail += static_cast<double>(counts[lp - 1]);
      if (r1 < c_ * tail) {
        best = static_cast<int>(lp);
        break;
      }
    }
    return best;  // 0 means not even (c,1)-diverse (impossible if c > 1).
  };

  int min_l = 0;
  bool first = true;
  for (const std::vector<size_t>& counts : classes) {
    int l = max_l_for_class(counts);
    if (first || l < min_l) {
      min_l = l;
      first = false;
    }
  }
  return static_cast<double>(min_l);
}

}  // namespace mdc
