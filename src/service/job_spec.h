// Job specifications for the resident mdcd service.
//
// A JobSpec is one unit of client work — an anonymize / compare / report
// request — carrying a tenant label for fair scheduling, a scheduling cost,
// and the client's execution budgets (deadline, step cap), which the
// service propagates into the job's RunContext. Specs arrive over the
// newline-delimited wire protocol (`submit <id> key=value ...`, see
// docs/service.md) and are journaled durably (snapshot kind kServiceJob)
// before the submit is acknowledged, so a crash can never lose an accepted
// job. Terminal outcomes are recorded the same way (kServiceOutcome).

#ifndef MDC_SERVICE_JOB_SPEC_H_
#define MDC_SERVICE_JOB_SPEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/batch_runner.h"

namespace mdc::service {

struct JobSpec {
  std::string id;                // Unique across the service; resume key.
  std::string tenant = "default";
  std::string kind = "anonymize";  // anonymize | perturb | compare | report.
  uint64_t cost = 1;             // Deficit-round-robin scheduling units.
  int64_t deadline_ms = 0;       // Client deadline; 0 = unbounded.
  uint64_t max_steps = 0;        // Client step budget; 0 = unbounded.
  // Opaque key=value parameters interpreted by the executor (algorithm,
  // dataset, k, ...).
  std::map<std::string, std::string> params;
};

// True when `text` is non-empty and uses only [A-Za-z0-9_.-]: ids and
// tenants become file names and protocol tokens, so they must be safe for
// both.
bool IsValidToken(std::string_view text);

// Parses the payload of a `submit` protocol line: "<id> key=value ...".
// Reserved keys tenant / kind / cost / deadline_ms / max_steps fill the
// typed fields; everything else lands in params. Rejects malformed tokens,
// unknown kinds, and non-positive cost with a clean status.
StatusOr<JobSpec> ParseSubmitSpec(std::string_view text);

// Durable journal record: the spec plus its admission sequence number
// (recovery re-queues incomplete jobs in admission order).
std::string SerializeJobSpec(const JobSpec& spec, uint64_t seq);

struct JobRecord {
  JobSpec spec;
  uint64_t seq = 0;
};
StatusOr<JobRecord> DeserializeJobSpec(std::string_view bytes);

// Terminal outcome record (reuses the batch runner's JobState taxonomy).
std::string SerializeOutcome(const JobOutcome& outcome);
StatusOr<JobOutcome> DeserializeOutcome(std::string_view bytes);

}  // namespace mdc::service

#endif  // MDC_SERVICE_JOB_SPEC_H_
