// Bounded, multi-tenant admission control with deterministic shedding.
//
// The service must never let its queue grow without bound, and a rejected
// job must be rejected *deterministically* — the same arrival order always
// sheds the same jobs, independent of how fast the worker drains the
// queue. That rules out accounting against instantaneous queue occupancy
// (a race between client and worker). Instead budgets are charged per
// **admission window**: every accepted job consumes cost units from a
// global budget and from its tenant's budget, and the window resets only
// at client-visible barriers (an explicit `wait` reaching idle, a drain,
// or service start). Decisions therefore depend only on the arrival
// sequence and the barrier positions, both of which the client controls.
// The in-memory queue is bounded by the window capacity as a corollary
// (queued <= admitted-this-window).
//
// Dispatch order is deficit round-robin (DRR) across tenants: tenants are
// visited in first-arrival order, each visit refills the tenant's deficit
// by `quantum`, and a job is dispatched when its head-of-queue cost fits
// the deficit. One greedy tenant cannot starve the others; cost-weighted
// jobs (cost=4 compare sweeps vs cost=1 anonymize calls) share capacity
// proportionally. Dequeue order is a pure function of the admitted
// sequence, so the worker's schedule is deterministic too.
//
// Not thread-safe: ServiceCore serializes access under its own mutex.

#ifndef MDC_SERVICE_ADMISSION_H_
#define MDC_SERVICE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "service/job_spec.h"

namespace mdc::service {

struct AdmissionConfig {
  // Cost units admitted per window across all tenants. The hard bound on
  // queue growth.
  uint64_t window_capacity = 256;
  // Cost units one tenant may admit per window; 0 = no per-tenant bound
  // (the global capacity still applies).
  uint64_t tenant_budget = 0;
  // DRR deficit refill per tenant visit.
  uint64_t quantum = 1;
};

// Why a submit was accepted or shed. Shedding is typed — the client always
// learns which budget rejected it, never a silent drop or a blocked queue.
enum class AdmitDecision : uint32_t {
  kAdmitted = 0,
  kOverloadedWindow = 1,  // Global window capacity exhausted.
  kOverloadedTenant = 2,  // Tenant window budget exhausted.
  kDuplicateId = 3,       // Id already queued (or known to the service).
  kDraining = 4,          // Service is draining; no new work.
  kInvalidSpec = 5,       // Empty id / zero cost.
};

// Stable lower-case name ("admitted", "overloaded_window", ...).
const char* AdmitDecisionName(AdmitDecision decision);

// Inverse of AdmitDecisionName; nullopt for an unknown token. The socket
// client uses this to parse "rejected <id> <name>" replies.
std::optional<AdmitDecision> AdmitDecisionFromName(std::string_view name);

// True for the two kOverloaded* decisions.
bool IsOverloaded(AdmitDecision decision);

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config);

  // Decides deterministically from the admission sequence alone; on
  // kAdmitted the job joins its tenant's queue.
  AdmitDecision Admit(const JobSpec& spec);

  // Recovery path: journaled jobs were admitted by a previous process
  // life, so they bypass window budgets (they still charge them, keeping
  // later decisions conservative) and re-enter in admission order.
  void Requeue(const JobSpec& spec);

  // Next job in DRR order; nullopt when empty.
  std::optional<JobSpec> Dequeue();

  // Rolls back an Admit whose durable journal write failed: removes the
  // job (it is its tenant's newest entry) and refunds the window charges,
  // as if the submit never happened.
  void Abandon(const JobSpec& spec);

  // Closes the window barrier: window charges reset. Call only at
  // client-visible idle points (wait-idle, drain, start) or determinism is
  // lost.
  void ResetWindow();

  // Stop admitting (Admit returns kDraining); queued jobs still dequeue.
  void CloseForDrain();
  bool draining() const { return draining_; }

  size_t queued() const { return queued_; }
  uint64_t window_cost() const { return window_cost_; }
  std::vector<std::string> QueuedIds() const;  // DRR dispatch order.

 private:
  struct Tenant {
    std::deque<JobSpec> jobs;
    uint64_t deficit = 0;
    uint64_t window_cost = 0;
  };

  AdmissionConfig config_;
  std::map<std::string, Tenant> tenants_;
  std::set<std::string> queued_ids_;
  // Tenants in first-arrival order; entries stay after a tenant empties so
  // the visit order is stable for the life of the queue.
  std::vector<std::string> ring_;
  size_t ring_pos_ = 0;
  uint64_t window_cost_ = 0;
  size_t queued_ = 0;
  bool draining_ = false;
};

}  // namespace mdc::service

#endif  // MDC_SERVICE_ADMISSION_H_
