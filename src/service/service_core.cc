#include "service/service_core.h"

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/csv.h"
#include "common/durable_io.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace mdc::service {
namespace {

// Budget codes mean "interrupted", not "failed": the attempt may leave a
// checkpoint and the job stays incomplete.
bool IsInterruption(const Status& status) {
  return status.code() == StatusCode::kCancelled ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kResourceExhausted;
}

// Names in `dir` with suffix `suffix` (stripped), sorted for determinism.
// Stray "*.tmp" leftovers from a hard kill mid-DurableWriteFile are
// removed — the rename never happened, so they are dead bytes.
StatusOr<std::vector<std::string>> ListDir(const std::string& dir,
                                           std::string_view suffix) {
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) {
    return ErrnoToStatus(errno, "opendir " + dir);
  }
  std::vector<std::string> names;
  while (dirent* entry = readdir(handle)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (name.size() >= 4 && name.substr(name.size() - 4) == ".tmp") {
      std::remove((dir + "/" + name).c_str());
      continue;
    }
    if (name.size() < suffix.size() ||
        name.substr(name.size() - suffix.size()) != suffix) {
      continue;
    }
    names.push_back(name.substr(0, name.size() - suffix.size()));
  }
  closedir(handle);
  std::sort(names.begin(), names.end());
  return names;
}

std::string FormatSeq(uint64_t seq) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%012llu",
                static_cast<unsigned long long>(seq));
  return buffer;
}

// Moves a rotted record out of the replay set (rename to <path>.corrupt)
// so recovery can continue past it. The bytes are preserved for forensics;
// only the rename failing is fatal, since leaving the record in place
// would re-corrupt the next recovery too.
Status QuarantineRecord(const std::string& path) {
  const std::string target = path + ".corrupt";
  std::remove(target.c_str());  // A previous life may have quarantined one.
  if (std::rename(path.c_str(), target.c_str()) != 0) {
    return ErrnoToStatus(errno, "quarantine rename " + path);
  }
  MDC_METRIC_INC("svc.recovery.quarantined");
  return Status::Ok();
}

}  // namespace

std::string ServiceStats::ToString() const {
  return "queued=" + std::to_string(queued) +
         " running=" + std::to_string(running) +
         " done=" + std::to_string(completed) +
         " submitted=" + std::to_string(submitted) +
         " admitted=" + std::to_string(admitted) +
         " shed=" + std::to_string(shed) +
         " duplicates=" + std::to_string(duplicates) +
         " recovered=" + std::to_string(recovered);
}

ServiceCore::ServiceCore(ServiceConfig config, Executor executor)
    : config_(std::move(config)),
      executor_(std::move(executor)),
      drain_token_(config_.drain_token),
      cache_(config_.cache_enabled
                 ? std::make_unique<DatasetCache>(config_.cache)
                 : nullptr),
      queue_(config_.admission) {}

ServiceCore::~ServiceCore() { (void)Drain(); }

std::string ServiceCore::JobPath(uint64_t seq, const std::string& id) const {
  return config_.state_dir + "/jobs/" + FormatSeq(seq) + "-" + id + ".job";
}
std::string ServiceCore::DonePath(const std::string& id) const {
  return config_.state_dir + "/done/" + id + ".done";
}
std::string ServiceCore::CkptPath(const std::string& id) const {
  return config_.state_dir + "/ckpt/" + id + ".ckpt";
}
std::string ServiceCore::ArtifactPath(const std::string& id) const {
  return config_.state_dir + "/artifacts/" + id;
}

StatusOr<std::unique_ptr<ServiceCore>> ServiceCore::Start(
    ServiceConfig config, Executor executor) {
  if (config.state_dir.empty()) {
    return Status::InvalidArgument("service: state_dir must be set");
  }
  if (executor == nullptr) {
    return Status::InvalidArgument("service: executor must be set");
  }
  MDC_RETURN_IF_ERROR(EnsureWritableDir(config.state_dir));
  for (const char* sub : {"/jobs", "/done", "/ckpt", "/artifacts"}) {
    MDC_RETURN_IF_ERROR(EnsureWritableDir(config.state_dir + sub));
  }
  std::unique_ptr<ServiceCore> core(
      new ServiceCore(std::move(config), std::move(executor)));
  MDC_RETURN_IF_ERROR(core->Recover());
  core->worker_ = std::thread([raw = core.get()] { raw->WorkerLoop(); });
  return core;
}

Status ServiceCore::Recover() {
  // Done records first: they decide which journaled jobs are incomplete.
  MDC_ASSIGN_OR_RETURN(std::vector<std::string> done_ids,
                       ListDir(config_.state_dir + "/done", ".done"));
  for (const std::string& id : done_ids) {
    MDC_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(DonePath(id)));
    auto outcome = DeserializeOutcome(bytes);
    if (!outcome.ok() || outcome->id != id) {
      // Truncated / CRC-failing / mismatched done record: quarantine it.
      // The job now looks incomplete and re-runs; the executor is
      // deterministic, so the regenerated artifact and done record are
      // byte-identical to the lost ones.
      MDC_RETURN_IF_ERROR(QuarantineRecord(DonePath(id)));
      ++quarantined_;
      continue;
    }
    completed_[id] = std::move(*outcome);
  }
  MDC_ASSIGN_OR_RETURN(std::vector<std::string> job_files,
                       ListDir(config_.state_dir + "/jobs", ".job"));
  std::vector<JobRecord> incomplete;
  for (const std::string& stem : job_files) {
    const std::string path = config_.state_dir + "/jobs/" + stem + ".job";
    MDC_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    auto record = DeserializeJobSpec(bytes);
    if (!record.ok()) {
      // A rotted journal record cannot be replayed, but it must not take
      // down the healthy jobs around it: quarantine and continue.
      MDC_RETURN_IF_ERROR(QuarantineRecord(path));
      ++quarantined_;
      continue;
    }
    next_seq_ = std::max(next_seq_, record->seq + 1);
    if (completed_.count(record->spec.id) == 0) {
      incomplete.push_back(std::move(*record));
    }
  }
  // File names sort by zero-padded seq, but trust the records, not the
  // directory: re-queue in admission order.
  std::sort(incomplete.begin(), incomplete.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.seq < b.seq; });
  for (const JobRecord& record : incomplete) {
    queue_.Requeue(record.spec);
    MDC_METRIC_INC("svc.recovered");
  }
  recovered_ = incomplete.size();
  stats_.recovered = incomplete.size();
  // Recovery is a client-visible barrier (the process restarted): the
  // admission window opens fresh, charged with the re-queued backlog.
  return Status::Ok();
}

StatusOr<AdmitDecision> ServiceCore::Submit(const JobSpec& spec) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  MDC_METRIC_INC("svc.submitted");
  // A finished or in-flight job with the same id is a duplicate even
  // though it is no longer queued: ids are resume keys, not reusable.
  if (!spec.id.empty() &&
      (completed_.count(spec.id) != 0 || running_id_ == spec.id)) {
    ++stats_.duplicates;
    MDC_METRIC_INC("svc.shed.duplicate_id");
    return AdmitDecision::kDuplicateId;
  }
  AdmitDecision decision = queue_.Admit(spec);
  if (decision != AdmitDecision::kAdmitted) {
    if (IsOverloaded(decision)) {
      ++stats_.shed;
    } else if (decision == AdmitDecision::kDuplicateId) {
      ++stats_.duplicates;
    }
    // Dynamic name: the MDC_METRIC_* macros intern per call site, which
    // would freeze the first decision's name — go through the registry.
    metrics::GetCounter(std::string("svc.shed.") + AdmitDecisionName(decision))
        .Increment(1);
    return decision;
  }
  // Journal before acknowledging; the queue entry is memory-only until the
  // record is durable. On journal failure the admission is rolled back by
  // dequeuing the job we just queued (it is the only change).
  uint64_t seq = next_seq_++;
  Status journal = DurableWriteFile(JobPath(seq, spec.id),
                                    SerializeJobSpec(spec, seq));
  if (!journal.ok()) {
    // Roll back: drain the queue copy-free by removing this spec. The job
    // was just admitted, so it is its tenant's newest entry.
    queue_.Abandon(spec);
    --next_seq_;
    return journal;
  }
  ++stats_.admitted;
  MDC_METRIC_INC("svc.admitted");
  lock.unlock();
  work_cv_.notify_one();
  return AdmitDecision::kAdmitted;
}

void ServiceCore::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return (queue_.queued() == 0 && running_id_.empty()) || stop_worker_;
  });
  // Client-visible barrier: the window resets here and only here (plus
  // start/drain), keeping shed decisions a pure function of arrival order.
  queue_.ResetWindow();
  MDC_METRIC_INC("svc.window_resets");
}

bool ServiceCore::Idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.queued() == 0 && running_id_.empty();
}

void ServiceCore::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock,
                  [this] { return stop_worker_ || queue_.queued() > 0; });
    if (stop_worker_) return;  // Drain: leave queued jobs journaled.
    std::optional<JobSpec> job = queue_.Dequeue();
    if (!job.has_value()) continue;
    running_id_ = job->id;
    lock.unlock();
    ExecuteJob(*job);
    lock.lock();
    running_id_.clear();
    if (queue_.queued() == 0) {
      lock.unlock();
      idle_cv_.notify_all();
      lock.lock();
    }
  }
}

void ServiceCore::ExecuteJob(const JobSpec& spec) {
  // Resume bytes from a drain of a previous attempt or process life.
  std::string checkpoint;
  {
    StatusOr<std::string> bytes = ReadFileToString(CkptPath(spec.id));
    if (bytes.ok()) {
      checkpoint = std::move(bytes).value();
      MDC_METRIC_INC("svc.resumed_from_checkpoint");
    }
  }
  BackoffSequence backoff(config_.backoff_base_ms, config_.backoff_max_ms,
                          config_.backoff_jitter, config_.backoff_jitter_seed,
                          BackoffSalt(spec.id));
  JobOutcome outcome;
  outcome.id = spec.id;
  while (true) {
    ++outcome.attempts;
    MDC_METRIC_INC("svc.attempts");
    if (outcome.attempts > 1) MDC_METRIC_INC("svc.retries");
    RunContext run;
    int64_t deadline =
        spec.deadline_ms > 0 ? spec.deadline_ms : config_.default_deadline_ms;
    if (deadline > 0) run.set_deadline_ms(deadline);
    if (spec.max_steps > 0) run.set_max_steps(spec.max_steps);
    run.set_cancellation(drain_token_);
    // Pre-attempt injection point: torture runs arm "svc.execute" to
    // exercise the retry/quarantine paths without a failing executor.
    ExecResult result;
    if (Status injected = MDC_FAILPOINT_STATUS("svc.execute");
        !injected.ok()) {
      result.status = std::move(injected);
    } else {
      result = executor_({spec, &run, checkpoint, cache_.get()});
    }

    if (drain_token_.cancelled() ||
        result.status.code() == StatusCode::kCancelled) {
      // Drain interrupted the attempt: persist whatever resumable state it
      // captured and leave the job incomplete for the next process life.
      if (!result.checkpoint.empty()) {
        if (DurableWriteFile(CkptPath(spec.id), result.checkpoint).ok()) {
          MDC_METRIC_INC("svc.checkpoints_saved");
        }
      }
      MDC_METRIC_INC("svc.interrupted");
      return;
    }

    Status terminal = result.status;
    if (terminal.ok()) {
      bool truncated = result.truncated || !run.exhausted().ok();
      outcome.state = truncated ? JobState::kTruncated : JobState::kOk;
      outcome.message = truncated ? run.exhausted().message() : "";
      terminal = PersistCompletion(spec, outcome, result.artifact);
      if (terminal.ok()) {
        MDC_METRIC_INC(truncated ? "svc.jobs.truncated" : "svc.jobs.ok");
        break;
      }
      // Fall through: the persist failure classifies like any attempt
      // failure (transient I/O retries, deterministic quarantines).
    } else if (IsInterruption(terminal)) {
      // The job's own budget expired without a best-so-far result; treat
      // like the batch runner: transient (the deadline was wall-clock)
      // until retries exhaust.
      if (!result.checkpoint.empty()) {
        (void)DurableWriteFile(CkptPath(spec.id), result.checkpoint);
        checkpoint = result.checkpoint;
      }
    }

    if (IsTransientStatus(terminal) || IsInterruption(terminal)) {
      if (outcome.attempts <= static_cast<uint32_t>(config_.max_retries)) {
        int64_t delay = backoff.NextDelayMs(outcome.attempts);
        if (delay > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
        continue;
      }
      outcome.state = JobState::kExhausted;
      outcome.message = terminal.message();
      MDC_METRIC_INC("svc.jobs.exhausted");
    } else {
      outcome.state = JobState::kQuarantined;
      outcome.message = terminal.message();
      MDC_METRIC_INC("svc.jobs.quarantined");
    }
    // Terminal failure: record it durably. If even that write fails the
    // job simply stays incomplete (at-least-once; it re-runs on restart).
    if (!PersistCompletion(spec, outcome, /*artifact=*/"").ok()) {
      MDC_METRIC_INC("svc.persist_failures");
      return;
    }
    break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  completed_[spec.id] = outcome;
  outcomes_.push_back(outcome);
  ++stats_.completed;
  MDC_METRIC_INC("svc.completed");
}

Status ServiceCore::PersistCompletion(const JobSpec& spec,
                                      const JobOutcome& outcome,
                                      std::string_view artifact) {
  // Artifact first, done record second: a crash between the two re-runs
  // the job, which deterministically rewrites the identical artifact. The
  // reverse order could mark a job done whose artifact never landed.
  if (outcome.state == JobState::kOk || outcome.state == JobState::kTruncated) {
    MDC_RETURN_IF_ERROR(DurableWriteFile(ArtifactPath(spec.id), artifact));
  }
  MDC_RETURN_IF_ERROR(
      DurableWriteFile(DonePath(spec.id), SerializeOutcome(outcome)));
  // The checkpoint is now stale; its absence is fine on the next scan.
  std::remove(CkptPath(spec.id).c_str());
  return Status::Ok();
}

Status ServiceCore::Drain() {
  // Serialized end to end so a second caller observes the final status,
  // never a drain still in flight.
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (drained_) return drain_status_;
    drained_ = true;
    queue_.CloseForDrain();
    stop_worker_ = true;
    MDC_METRIC_INC("svc.drains");
  }
  // Interrupt the in-flight job (its RunContext carries this token), wake
  // the worker, and wait for it to checkpoint and exit.
  drain_token_.Cancel();
  work_cv_.notify_all();
  idle_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Flush observability state durably: the full snapshot for humans, the
  // deterministic counters for the invariance tests.
  Status status =
      metrics::WriteSnapshotFile(config_.state_dir + "/metrics.json");
  Status counters =
      DurableWriteFile(config_.state_dir + "/counters.txt",
                       metrics::Snapshot().DeterministicCountersText());
  if (status.ok()) status = counters;
  std::lock_guard<std::mutex> lock(mu_);
  drain_status_ = status;
  return drain_status_;
}

ServiceStats ServiceCore::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats stats = stats_;
  stats.queued = queue_.queued();
  stats.running = running_id_.empty() ? 0 : 1;
  return stats;
}

std::vector<JobOutcome> ServiceCore::Outcomes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outcomes_;
}

size_t ServiceCore::recovered_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_;
}

}  // namespace mdc::service
