// Resident, overload-resilient job-service core (`mdcd`).
//
// ServiceCore turns the batch machinery into a long-running service:
// clients submit JobSpecs, a bounded multi-tenant admission queue decides
// deterministically whether to accept or shed each one (see admission.h),
// and a worker executes admitted jobs in deficit-round-robin order under a
// fresh RunContext carrying the client's deadline/step budgets. Supervision
// mirrors the batch runner: transient failures retry with bounded
// decorrelated-jitter backoff, deterministic failures quarantine, and every
// state transition that must survive a crash is durable:
//
//   state_dir/jobs/<seq>-<id>.job   journal record, written before a
//                                   submit is acknowledged
//   state_dir/artifacts/<id>        the job's result, temp+fsync+rename
//   state_dir/done/<id>.done        terminal outcome, written after the
//                                   artifact
//   state_dir/ckpt/<id>.ckpt        in-flight search state captured on
//                                   graceful drain (Checkpointable hooks)
//
// The ordering (journal -> artifact -> done) makes restart-equals-
// uninterrupted recovery a rescan: every journaled job without a done
// record is incomplete and re-enters the queue in admission order, resuming
// from its checkpoint when one exists. Because executors are deterministic
// functions of the spec (and checkpoint resume is proven equal to an
// uninterrupted run), recovered artifacts are byte-identical to a run that
// was never killed — the kill-torture harness (tests/service_torture_test)
// asserts exactly that across randomized SIGKILL points.
//
// Graceful drain (SIGTERM in the CLI): stop admitting (typed kDraining
// rejections), cancel the in-flight job through its RunContext token,
// persist the checkpoint it captures, flush the mdc::metrics snapshot, and
// return with all state durable.
//
// All svc.* counters are charged at submit/commit points under the core
// mutex, so for a fixed submission script they are byte-identical across
// algorithm thread counts (the deterministic-counter contract).

#ifndef MDC_SERVICE_SERVICE_CORE_H_
#define MDC_SERVICE_SERVICE_CORE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/batch_runner.h"
#include "service/admission.h"
#include "service/dataset_cache.h"
#include "service/job_spec.h"

namespace mdc::service {

struct ServiceConfig {
  std::string state_dir;  // Created (one level) if missing.
  AdmissionConfig admission;
  // Retry policy for transient failures, shared with the batch runner.
  int max_retries = 2;
  int64_t backoff_base_ms = 10;
  int64_t backoff_max_ms = 1000;
  bool backoff_jitter = true;
  uint64_t backoff_jitter_seed = 0;
  // Deadline applied to jobs that do not carry their own; 0 = unbounded.
  int64_t default_deadline_ms = 0;
  // Resident dataset cache (docs/service.md): file-backed job inputs are
  // loaded + dictionary-encoded once and served across jobs. Memory-only —
  // recovery never trusts it; artifacts are byte-identical either way.
  bool cache_enabled = true;
  DatasetCacheConfig cache;
  // Shared drain token: copies share one flag, so a signal handler can
  // Cancel() its copy to interrupt the in-flight job before the normal
  // control flow reaches Drain().
  CancellationToken drain_token;
};

struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;        // Typed overload rejections.
  uint64_t duplicates = 0;
  uint64_t recovered = 0;   // Incomplete jobs re-queued at start.
  uint64_t completed = 0;   // Terminal outcomes this process life.
  uint64_t queued = 0;
  uint64_t running = 0;     // 0 or 1 (single dispatch worker).

  // "queued=0 running=0 done=3 shed=1 ..." — the protocol status line.
  std::string ToString() const;
};

class ServiceCore {
 public:
  // One executor invocation = one attempt at one job.
  struct ExecRequest {
    const JobSpec& spec;
    RunContext* run;  // Budgets + drain cancellation already applied.
    // Checkpoint bytes saved by an earlier interrupted attempt; empty on a
    // fresh start. Executors that support Checkpointable resume restart
    // the search here.
    std::string_view resume_checkpoint;
    // Resident dataset cache, or null when disabled (--no-cache).
    // Executors resolve file-backed inputs through it; using it is an
    // optimization only — artifacts must not depend on it.
    DatasetCache* cache = nullptr;
  };
  struct ExecResult {
    // OK: `artifact` is the job's result. Budget code: the attempt was
    // interrupted (drain or the job's own budget) — `checkpoint`, when
    // non-empty, resumes it. Other codes classify the failure
    // (IsTransientStatus decides retry vs quarantine).
    Status status;
    std::string artifact;
    std::string checkpoint;
    bool truncated = false;  // OK result degraded to best-so-far.
  };
  using Executor = std::function<ExecResult(const ExecRequest&)>;

  // Validates/creates the state directory, replays the journal (recovery),
  // and starts the dispatch worker. A corrupt (truncated / CRC-failing)
  // journal or outcome record is quarantined — renamed to <file>.corrupt
  // and counted under svc.recovery.quarantined — rather than aborting
  // recovery: executors are deterministic, so re-running a job whose done
  // record was lost to corruption reproduces the identical artifact, while
  // one rotted record must not take down every healthy job beside it. I/O
  // failures reading the state directory remain hard errors. Stray *.tmp
  // files from a previous hard kill are removed.
  static StatusOr<std::unique_ptr<ServiceCore>> Start(ServiceConfig config,
                                                      Executor executor);
  ~ServiceCore();  // Implies Drain().

  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  // Admission: journal-then-queue. The decision is deterministic for a
  // fixed arrival order (see admission.h); an accepted job is durable
  // before this returns. Only journal I/O failures are Status errors.
  StatusOr<AdmitDecision> Submit(const JobSpec& spec);

  // Blocks until every admitted job is terminal, then closes the
  // admission window (the client-visible barrier that resets budgets).
  void WaitIdle();

  // Non-blocking idleness probe: true when nothing is queued or running.
  // The socket front-end polls this so a `wait` request never blocks the
  // event loop; on true it calls WaitIdle() for the window-reset barrier,
  // which returns immediately (only the event loop submits).
  bool Idle() const;

  // Graceful drain: stop admitting, checkpoint the in-flight job, stop
  // the worker, flush metrics.json + counters.txt durably. Idempotent;
  // queued jobs stay journaled for the next process life.
  Status Drain();

  ServiceStats GetStats() const;
  // Terminal outcomes of this process life, in completion order.
  std::vector<JobOutcome> Outcomes() const;
  size_t recovered_jobs() const;
  // Corrupt records renamed to *.corrupt during this life's recovery.
  size_t quarantined_records() const { return quarantined_; }

  // Cancelled when drain starts; signal handlers use it to interrupt the
  // in-flight job before calling Drain() from a normal context.
  CancellationToken drain_token() const { return drain_token_; }

  // The resident dataset cache; null when ServiceConfig::cache_enabled is
  // false. Thread-safe for stats/clear from the front-end event loop
  // while the worker resolves through it.
  DatasetCache* cache() const { return cache_.get(); }

 private:
  ServiceCore(ServiceConfig config, Executor executor);

  Status Recover();                 // Journal replay; call before worker.
  void WorkerLoop();
  void ExecuteJob(const JobSpec& spec);
  // Artifact then done record, both durable; any failure is returned for
  // transient/deterministic classification by the attempt loop.
  Status PersistCompletion(const JobSpec& spec, const JobOutcome& outcome,
                           std::string_view artifact);

  std::string JobPath(uint64_t seq, const std::string& id) const;
  std::string DonePath(const std::string& id) const;
  std::string CkptPath(const std::string& id) const;
  std::string ArtifactPath(const std::string& id) const;

  const ServiceConfig config_;
  const Executor executor_;
  CancellationToken drain_token_;
  std::unique_ptr<DatasetCache> cache_;

  std::mutex drain_mu_;  // Serializes Drain() end to end.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Worker wakeups.
  std::condition_variable idle_cv_;   // WaitIdle wakeups.
  AdmissionQueue queue_;
  std::map<std::string, JobOutcome> completed_;  // All known done records.
  std::vector<JobOutcome> outcomes_;  // This life, completion order.
  std::string running_id_;
  uint64_t next_seq_ = 1;
  size_t recovered_ = 0;
  size_t quarantined_ = 0;
  ServiceStats stats_;
  bool stop_worker_ = false;
  bool drained_ = false;
  Status drain_status_;

  std::thread worker_;  // Started last, joined in Drain().
};

}  // namespace mdc::service

#endif  // MDC_SERVICE_SERVICE_CORE_H_
