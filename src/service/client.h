// Retrying client for the mdcd socket front-end.
//
// ServiceClient speaks the newline protocol (docs/service.md) over a
// Unix-domain or TCP connection with the supervision the daemon side
// assumes of a well-behaved caller:
//
//  - **Timeouts.** Connect and each request round-trip are bounded
//    (`connect_timeout_ms`, `request_timeout_ms`); the client never blocks
//    forever on a dead or wedged daemon.
//  - **Retry with decorrelated jitter.** A failed round-trip (connect
//    refused, send/recv error, timeout, torn connection after a daemon
//    SIGKILL, or a typed transient transport rejection such as
//    `overloaded_connections` / `draining` / a deadline reap) closes the
//    connection and retries after a BackoffSequence delay — the same
//    bounded decorrelated-jitter law the batch runner and service worker
//    use, salted by the request line so concurrent clients do not
//    thunder together. `line_too_long` is NOT retried: the same line
//    would be rejected again.
//  - **Idempotent resubmission.** Submit() leans on the journal's
//    duplicate_id semantics for an at-most-once guarantee: if the daemon
//    journaled the job but died before the ack, the retried submit is
//    answered `rejected <id> duplicate_id`, which SubmitResult::accepted()
//    treats as success — the job is durably admitted exactly once. The
//    socket kill-torture harness proves this end to end (byte-identical
//    artifacts, no duplicate execution, across daemon SIGKILLs at
//    arbitrary points in the connection).
//
// Client-side events are counted under `client.*` — deliberately outside
// the deterministic-counter prefixes (including the daemon's `net.*`):
// retry counts are a property of fault timing, not of the request script.
//
// Not thread-safe: one ServiceClient per thread (each holds one
// connection and one reply buffer).

#ifndef MDC_SERVICE_CLIENT_H_
#define MDC_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "service/admission.h"
#include "service/transport.h"

namespace mdc::service {

struct ClientConfig {
  std::string target;  // SocketAddress syntax ("unix:..." / "tcp:...").
  int64_t connect_timeout_ms = 2000;   // Per connect attempt.
  int64_t request_timeout_ms = 10000;  // Per round-trip attempt.
  int max_retries = 4;                 // Extra attempts after the first.
  // Backoff law (BackoffSequence): bounded decorrelated jitter.
  int64_t backoff_base_ms = 5;
  int64_t backoff_max_ms = 500;
  bool backoff_jitter = true;
  uint64_t backoff_jitter_seed = 0;
  uint64_t max_reply_bytes = 1 << 20;  // Reply-line sanity bound.
};

// Parsed reply to Submit(). `accepted()` is the idempotent contract: a
// fresh admission and a duplicate of an already-journaled id are the same
// durable outcome to a retrying caller.
struct SubmitResult {
  AdmitDecision decision = AdmitDecision::kInvalidSpec;
  std::string id;
  std::string reply;  // Raw reply line.

  bool accepted() const {
    return decision == AdmitDecision::kAdmitted ||
           decision == AdmitDecision::kDuplicateId;
  }
};

class ServiceClient {
 public:
  explicit ServiceClient(ClientConfig config);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  // One protocol round-trip with the full retry/reconnect loop. Returns
  // the reply line (which may be an application-level "err ..." — those
  // are answers, not transport failures) or the last transport error once
  // retries are exhausted.
  StatusOr<std::string> Request(const std::string& line);

  // "submit <spec>" with idempotent-retry semantics (see SubmitResult).
  // Application rejections ("err submit ...", "err <id> ...") surface as
  // Status errors; typed shed decisions surface in the result.
  StatusOr<SubmitResult> Submit(const std::string& spec_line);

  // "status" -> the stats line after "ok status ".
  StatusOr<std::string> GetStatusLine();

  // "metrics" -> the one-line JSON snapshot after "ok metrics ".
  StatusOr<std::string> GetMetricsJson();

  // "cache stats" -> the stats text after "ok cache " ("off" when the
  // daemon runs with --no-cache).
  StatusOr<std::string> GetCacheStatsLine();

  // "cache clear" -> the daemon's reply payload ("cleared entries=N", or
  // "off" under --no-cache).
  StatusOr<std::string> CacheClear();

  // "wait" -> blocks (server-side) until the service is idle. Uses
  // `timeout_ms` (-1 = config request timeout) for the round-trip since a
  // busy service legitimately answers late.
  Status WaitIdle(int64_t timeout_ms = -1);

  // "drain" -> asks the daemon to drain and exit. The connection is
  // expected to close afterwards.
  Status Drain(int64_t timeout_ms = -1);

  // Drops the connection; the next Request() reconnects. Safe anytime.
  void Disconnect();

  bool connected() const { return fd_ >= 0; }
  // Totals across this client's lifetime (observability, and the torture
  // harness asserts the retry path actually ran).
  uint64_t retries() const { return retries_; }
  uint64_t reconnects() const { return reconnects_; }

 private:
  Status EnsureConnected();
  // Request() with an explicit per-attempt round-trip budget (<= 0 uses
  // the config default).
  StatusOr<std::string> RequestWithTimeout(const std::string& line,
                                           int64_t timeout_ms);
  // Send `line` + '\n', read one reply line, all within `timeout_ms` from
  // now. Any failure means the connection state is unknown — the caller
  // closes and retries.
  StatusOr<std::string> RoundTrip(const std::string& line,
                                  int64_t timeout_ms);

  const ClientConfig config_;
  SocketAddress address_;
  Status address_status_;  // Parse result of config_.target.
  int fd_ = -1;
  std::string inbuf_;  // Bytes received past the last reply line.
  bool ever_connected_ = false;
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
};

}  // namespace mdc::service

#endif  // MDC_SERVICE_CLIENT_H_
