#include "service/job_spec.h"

#include "common/snapshot.h"
#include "common/strings.h"

namespace mdc::service {
namespace {

constexpr uint32_t kJobPayloadVersion = 1;
constexpr uint32_t kOutcomePayloadVersion = 1;

bool IsKnownKind(std::string_view kind) {
  return kind == "anonymize" || kind == "perturb" || kind == "compare" ||
         kind == "report";
}

}  // namespace

bool IsValidToken(std::string_view text) {
  if (text.empty() || text.size() > 128) return false;
  for (char c : text) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

StatusOr<JobSpec> ParseSubmitSpec(std::string_view text) {
  std::vector<std::string> tokens;
  for (const std::string& token : StrSplit(std::string(text), ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  if (tokens.empty()) {
    return Status::InvalidArgument("submit: missing job id");
  }
  JobSpec spec;
  spec.id = tokens[0];
  if (!IsValidToken(spec.id)) {
    return Status::InvalidArgument("submit: job id '" + spec.id +
                                   "' must be [A-Za-z0-9_.-]+");
  }
  for (size_t i = 1; i < tokens.size(); ++i) {
    std::vector<std::string> kv = StrSplit(tokens[i], '=');
    if (kv.size() != 2 || kv[0].empty()) {
      return Status::InvalidArgument("submit: token '" + tokens[i] +
                                     "' is not key=value");
    }
    const std::string& key = kv[0];
    const std::string& value = kv[1];
    if (key == "tenant") {
      if (!IsValidToken(value)) {
        return Status::InvalidArgument("submit: bad tenant '" + value + "'");
      }
      spec.tenant = value;
    } else if (key == "kind") {
      if (!IsKnownKind(value)) {
        return Status::InvalidArgument(
            "submit: unknown kind '" + value +
            "' (anonymize|perturb|compare|report)");
      }
      spec.kind = value;
    } else if (key == "cost") {
      std::optional<int64_t> parsed = ParseInt64(value);
      if (!parsed.has_value() || *parsed <= 0) {
        return Status::InvalidArgument("submit: cost must be positive, got '" +
                                       value + "'");
      }
      spec.cost = static_cast<uint64_t>(*parsed);
    } else if (key == "deadline_ms") {
      std::optional<int64_t> parsed = ParseInt64(value);
      if (!parsed.has_value() || *parsed < 0) {
        return Status::InvalidArgument("submit: bad deadline_ms '" + value +
                                       "'");
      }
      spec.deadline_ms = *parsed;
    } else if (key == "max_steps") {
      std::optional<int64_t> parsed = ParseInt64(value);
      if (!parsed.has_value() || *parsed < 0) {
        return Status::InvalidArgument("submit: bad max_steps '" + value +
                                       "'");
      }
      spec.max_steps = static_cast<uint64_t>(*parsed);
    } else if (key == "cache") {
      // Per-job cache opt-out; validated here so a typo is rejected at
      // submit instead of silently caching. Stored in params — the journal
      // record format is unchanged.
      if (value != "on" && value != "off") {
        return Status::InvalidArgument("submit: bad cache '" + value +
                                       "' (on|off)");
      }
      spec.params[key] = value;
    } else {
      spec.params[key] = value;
    }
  }
  return spec;
}

std::string SerializeJobSpec(const JobSpec& spec, uint64_t seq) {
  SnapshotWriter writer(SnapshotKind::kServiceJob, kJobPayloadVersion);
  writer.WriteU64(seq);
  writer.WriteString(spec.id);
  writer.WriteString(spec.tenant);
  writer.WriteString(spec.kind);
  writer.WriteU64(spec.cost);
  writer.WriteI64(spec.deadline_ms);
  writer.WriteU64(spec.max_steps);
  writer.WriteU64(spec.params.size());
  for (const auto& [key, value] : spec.params) {
    writer.WriteString(key);
    writer.WriteString(value);
  }
  return writer.Finish();
}

StatusOr<JobRecord> DeserializeJobSpec(std::string_view bytes) {
  MDC_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      SnapshotReader::Open(bytes, SnapshotKind::kServiceJob,
                           kJobPayloadVersion));
  JobRecord record;
  MDC_ASSIGN_OR_RETURN(record.seq, reader.ReadU64());
  MDC_ASSIGN_OR_RETURN(record.spec.id, reader.ReadString());
  MDC_ASSIGN_OR_RETURN(record.spec.tenant, reader.ReadString());
  MDC_ASSIGN_OR_RETURN(record.spec.kind, reader.ReadString());
  MDC_ASSIGN_OR_RETURN(record.spec.cost, reader.ReadU64());
  MDC_ASSIGN_OR_RETURN(record.spec.deadline_ms, reader.ReadI64());
  MDC_ASSIGN_OR_RETURN(record.spec.max_steps, reader.ReadU64());
  MDC_ASSIGN_OR_RETURN(uint64_t param_count, reader.ReadU64());
  if (param_count > reader.remaining() / (2 * sizeof(uint64_t))) {
    return Status::InvalidArgument("job record: param count exceeds data");
  }
  for (uint64_t i = 0; i < param_count; ++i) {
    MDC_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    MDC_ASSIGN_OR_RETURN(std::string value, reader.ReadString());
    record.spec.params[std::move(key)] = std::move(value);
  }
  MDC_RETURN_IF_ERROR(reader.ExpectEnd());
  if (!IsValidToken(record.spec.id) || !IsValidToken(record.spec.tenant) ||
      !IsKnownKind(record.spec.kind) || record.spec.cost == 0) {
    return Status::InvalidArgument("job record: invalid field values");
  }
  return record;
}

std::string SerializeOutcome(const JobOutcome& outcome) {
  SnapshotWriter writer(SnapshotKind::kServiceOutcome,
                        kOutcomePayloadVersion);
  writer.WriteString(outcome.id);
  writer.WriteU32(static_cast<uint32_t>(outcome.state));
  writer.WriteU32(outcome.attempts);
  writer.WriteString(outcome.message);
  return writer.Finish();
}

StatusOr<JobOutcome> DeserializeOutcome(std::string_view bytes) {
  MDC_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      SnapshotReader::Open(bytes, SnapshotKind::kServiceOutcome,
                           kOutcomePayloadVersion));
  JobOutcome outcome;
  MDC_ASSIGN_OR_RETURN(outcome.id, reader.ReadString());
  MDC_ASSIGN_OR_RETURN(uint32_t state, reader.ReadU32());
  if (state > static_cast<uint32_t>(JobState::kExhausted)) {
    return Status::InvalidArgument("outcome record: unknown job state");
  }
  outcome.state = static_cast<JobState>(state);
  MDC_ASSIGN_OR_RETURN(outcome.attempts, reader.ReadU32());
  MDC_ASSIGN_OR_RETURN(outcome.message, reader.ReadString());
  MDC_RETURN_IF_ERROR(reader.ExpectEnd());
  return outcome;
}

}  // namespace mdc::service
