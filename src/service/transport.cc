#include "service/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/durable_io.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace mdc::service {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoToStatus(errno, "fcntl O_NONBLOCK");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<int> GuardedAccept(int listener_fd) {
  // The failpoint fires before the syscall: a kill action lands with the
  // connection still pending in the backlog (the client sees the accept
  // window), an error action sheds this accept round.
  MDC_FAILPOINT("net.accept");
  while (true) {
    int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return ErrnoToStatus(errno, "accept");
  }
}

StatusOr<int64_t> GuardedRecv(int fd, char* buffer, size_t capacity) {
  MDC_FAILPOINT("net.read");
  ssize_t n = ::recv(fd, buffer, capacity, 0);
  if (n < 0) {
    // EINTR is folded into would-block: the event loop re-polls anyway.
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return ErrnoToStatus(errno, "recv");
  }
  return static_cast<int64_t>(n);
}

StatusOr<int64_t> GuardedSend(int fd, const char* data, size_t size) {
  MDC_FAILPOINT("net.write");
  while (true) {
    // MSG_NOSIGNAL: a peer that closed mid-reply must surface as EPIPE,
    // never SIGPIPE.
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<int64_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return ErrnoToStatus(errno, "send");
  }
}

Status GuardedClose(int fd) {
  // Fires before the syscall so a kill action lands with the fd still
  // open; an injected error is reported, but the close still happens —
  // leaking descriptors is never an acceptable failure mode.
  Status injected = MDC_FAILPOINT_STATUS("net.close");
  while (::close(fd) < 0 && errno == EINTR) {
  }
  return injected;
}

std::string SocketAddress::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

StatusOr<SocketAddress> ParseSocketAddress(std::string_view text) {
  SocketAddress address;
  if (StartsWith(text, "unix:")) {
    address.kind = SocketAddress::Kind::kUnix;
    address.path = std::string(text.substr(5));
    if (address.path.empty()) {
      return Status::InvalidArgument("listen address: empty unix path");
    }
    sockaddr_un probe;
    if (address.path.size() >= sizeof(probe.sun_path)) {
      return Status::InvalidArgument("listen address: unix path too long (" +
                                     std::to_string(address.path.size()) +
                                     " bytes, max " +
                                     std::to_string(sizeof(probe.sun_path) - 1) +
                                     ")");
    }
    return address;
  }
  if (StartsWith(text, "tcp:")) {
    address.kind = SocketAddress::Kind::kTcp;
    std::string_view rest = text.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument(
          "listen address: tcp needs tcp:<ipv4>:<port>");
    }
    address.host = std::string(rest.substr(0, colon));
    std::optional<int64_t> port = ParseInt64(rest.substr(colon + 1));
    if (!port.has_value() || *port < 0 || *port > 65535) {
      return Status::InvalidArgument("listen address: bad tcp port in '" +
                                     std::string(text) + "'");
    }
    address.port = static_cast<int>(*port);
    in_addr parsed;
    if (::inet_pton(AF_INET, address.host.c_str(), &parsed) != 1) {
      return Status::InvalidArgument(
          "listen address: host must be a numeric IPv4 address, got '" +
          address.host + "'");
    }
    return address;
  }
  return Status::InvalidArgument(
      "listen address must be unix:<path> or tcp:<ipv4>:<port>, got '" +
      std::string(text) + "'");
}

const char* TransportRejectName(TransportReject reject) {
  switch (reject) {
    case TransportReject::kLineTooLong:
      return "line_too_long";
    case TransportReject::kOverloadedConnections:
      return "overloaded_connections";
    case TransportReject::kReadDeadline:
      return "read_deadline";
    case TransportReject::kIdleDeadline:
      return "idle_deadline";
    case TransportReject::kWriteDeadline:
      return "write_deadline";
    case TransportReject::kDraining:
      return "draining";
  }
  return "unknown";
}

std::string TransportRejectReply(TransportReject reject) {
  return std::string("err transport ") + TransportRejectName(reject);
}

ProtocolAction HandleProtocolLine(ServiceCore& core, const std::string& line) {
  std::string command = line;
  std::string payload;
  if (size_t space = line.find(' '); space != std::string::npos) {
    command = line.substr(0, space);
    payload = line.substr(space + 1);
  }
  ProtocolAction action;
  if (command == "submit") {
    auto spec_or = ParseSubmitSpec(payload);
    if (!spec_or.ok()) {
      action.reply = "err submit " + spec_or.status().ToString();
      return action;
    }
    auto decision_or = core.Submit(*spec_or);
    if (!decision_or.ok()) {
      action.reply = "err " + spec_or->id + " " + decision_or.status().ToString();
    } else if (*decision_or == AdmitDecision::kAdmitted) {
      action.reply = "ok " + spec_or->id + " admitted";
    } else {
      action.reply =
          "rejected " + spec_or->id + " " + AdmitDecisionName(*decision_or);
    }
    return action;
  }
  if (command == "status") {
    action.reply = "ok status " + core.GetStats().ToString();
    return action;
  }
  if (command == "wait") {
    action.kind = ProtocolAction::Kind::kWaitIdle;
    return action;
  }
  if (command == "drain") {
    action.kind = ProtocolAction::Kind::kDrain;
    return action;
  }
  if (command == "metrics") {
    // Live pull of the merged snapshot (LDMS-style): rendered immediately
    // on the event-loop thread — Snapshot() only takes the registry's
    // shard-list mutex, never a lock the dispatch worker holds across job
    // execution, so a pull cannot block behind an in-flight job.
    action.reply = "ok metrics " + metrics::Snapshot().ToCompactJson();
    return action;
  }
  if (command == "cache") {
    DatasetCache* cache = core.cache();
    if (payload == "stats") {
      action.reply = cache == nullptr
                         ? "ok cache off"
                         : "ok cache " + cache->GetStats().ToString();
    } else if (payload == "clear") {
      action.reply =
          cache == nullptr
              ? "ok cache off"
              : "ok cache cleared entries=" + std::to_string(cache->Clear());
    } else {
      action.reply = "err cache usage: cache stats|clear";
    }
    return action;
  }
  action.reply = "err unknown command '" + command + "'";
  return action;
}

SocketFrontEnd::SocketFrontEnd(ServiceCore* core, TransportConfig config)
    : core_(core), config_(std::move(config)) {}

SocketFrontEnd::~SocketFrontEnd() {
  for (Conn& conn : conns_) {
    if (conn.fd >= 0) {
      ::close(conn.fd);
      conn.fd = -1;
    }
  }
  CloseListener();
}

void SocketFrontEnd::CloseListener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (address_.kind == SocketAddress::Kind::kUnix) {
      ::unlink(address_.path.c_str());
    }
  }
}

Status SocketFrontEnd::Listen() {
  MDC_ASSIGN_OR_RETURN(address_, ParseSocketAddress(config_.listen));
  if (config_.max_connections < 1) {
    return Status::InvalidArgument("transport: max_connections must be >= 1");
  }
  if (config_.max_line_bytes < 16) {
    return Status::InvalidArgument("transport: max_line_bytes must be >= 16");
  }
  if (address_.kind == SocketAddress::Kind::kUnix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoToStatus(errno, "socket(AF_UNIX)");
    // A stale socket file from a previous (possibly SIGKILLed) life would
    // make bind fail with EADDRINUSE; remove it — connections to the old
    // inode are dead anyway.
    ::unlink(address_.path.c_str());
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, address_.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      Status status = ErrnoToStatus(errno, "bind " + address_.ToString());
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoToStatus(errno, "socket(AF_INET)");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(address_.port));
    ::inet_pton(AF_INET, address_.host.c_str(), &addr.sin_addr);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      Status status = ErrnoToStatus(errno, "bind " + address_.ToString());
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      address_.port = ntohs(addr.sin_port);  // Resolve an ephemeral port.
    }
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status status = ErrnoToStatus(errno, "listen " + address_.ToString());
    CloseListener();
    return status;
  }
  MDC_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  bound_address_ = address_.ToString();
  return Status::Ok();
}

void SocketFrontEnd::Append(Conn& conn, std::string_view reply, int64_t now) {
  if (conn.out.empty()) conn.write_start_ms = now;
  conn.out.append(reply);
  conn.out.push_back('\n');
}

void SocketFrontEnd::CloseConn(Conn& conn) {
  if (conn.fd < 0) return;
  if (!GuardedClose(conn.fd).ok()) {
    MDC_METRIC_INC("net.errors.close");
  }
  conn.fd = -1;
  conn.in.clear();
  conn.out.clear();
  conn.waiting = false;
  MDC_METRIC_INC("net.closed");
}

void SocketFrontEnd::AcceptReady(int64_t now) {
  while (true) {
    // An accept fault (injected or real) sheds this accept round: the
    // socket stays pending in the backlog and is retried on the next poll
    // wake-up.
    StatusOr<int> accepted = GuardedAccept(listen_fd_);
    if (!accepted.ok()) {
      MDC_METRIC_INC("net.errors.accept");
      return;
    }
    if (*accepted < 0) return;  // Pending queue drained.
    int fd = *accepted;
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      MDC_METRIC_INC("net.errors.accept");
      continue;
    }
    if (static_cast<int>(conns_.size()) >= config_.max_connections) {
      // Typed transport-level shed: tell the client which layer refused
      // it, then close. Best-effort — an unwritable socket changes
      // nothing about the decision.
      std::string reply =
          TransportRejectReply(TransportReject::kOverloadedConnections) + "\n";
      (void)!::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      MDC_METRIC_INC("net.shed.connections");
      Conn doomed;
      doomed.fd = fd;
      CloseConn(doomed);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.last_activity_ms = now;
    conns_.push_back(std::move(conn));
    MDC_METRIC_INC("net.accepted");
  }
}

void SocketFrontEnd::HandleLine(Conn& conn, const std::string& line) {
  // Empty command (blank line or leading space): silently ignored, which
  // is exactly what the stdin front-end does.
  if (line.empty() || line[0] == ' ') return;
  MDC_METRIC_INC("net.requests");
  ProtocolAction action = HandleProtocolLine(*core_, line);
  switch (action.kind) {
    case ProtocolAction::Kind::kReply:
      Append(conn, action.reply, NowMs());
      break;
    case ProtocolAction::Kind::kWaitIdle:
      if (core_->Idle()) {
        // Already idle: WaitIdle() returns immediately and performs the
        // client-visible window reset barrier.
        core_->WaitIdle();
        MDC_METRIC_INC("net.waits");
        Append(conn, "ok wait idle", NowMs());
      } else {
        conn.waiting = true;  // Replied by ServeWaiters() at idle.
      }
      break;
    case ProtocolAction::Kind::kDrain:
      drain_requested_ = true;
      conn.wants_drain_reply = true;
      break;
  }
}

void SocketFrontEnd::ProcessBuffer(Conn& conn, int64_t now) {
  while (conn.fd >= 0 && !conn.closing && !drain_requested_) {
    size_t pos = conn.in.find('\n');
    if (pos == std::string::npos) {
      if (conn.in.size() > config_.max_line_bytes) {
        // Slow-loris / oversize frame: typed rejection, then drop the
        // connection — the buffer is freed now, not when the client
        // eventually sends a newline.
        MDC_METRIC_INC("net.rejected.line_too_long");
        Append(conn,
               TransportRejectReply(TransportReject::kLineTooLong) +
                   " limit=" + std::to_string(config_.max_line_bytes),
               now);
        conn.in.clear();
        conn.in.shrink_to_fit();
        conn.closing = true;
      }
      break;
    }
    if (pos > config_.max_line_bytes) {
      MDC_METRIC_INC("net.rejected.line_too_long");
      Append(conn,
             TransportRejectReply(TransportReject::kLineTooLong) +
                 " limit=" + std::to_string(config_.max_line_bytes),
             now);
      conn.in.clear();
      conn.closing = true;
      break;
    }
    std::string line = conn.in.substr(0, pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    conn.in.erase(0, pos + 1);
    HandleLine(conn, line);
  }
  conn.line_start_ms = conn.in.empty() ? -1
                       : (conn.line_start_ms < 0 ? now : conn.line_start_ms);
}

void SocketFrontEnd::ReadInput(Conn& conn, int64_t now) {
  // A read fault (injected or real) is transient and scoped to this
  // connection only — it closes, the others are untouched, and a retrying
  // client reconnects.
  char chunk[4096];
  StatusOr<int64_t> n = GuardedRecv(conn.fd, chunk, sizeof(chunk));
  if (!n.ok()) {
    MDC_METRIC_INC("net.errors.read");
    CloseConn(conn);
    return;
  }
  if (*n < 0) return;  // Would block; re-poll.
  if (*n == 0) {
    // Orderly EOF. A final unterminated line is processed like the stdin
    // front-end processes a last line without a newline, then the reply
    // is flushed and the connection closed.
    if (!conn.in.empty() && !drain_requested_) {
      std::string line = std::move(conn.in);
      conn.in.clear();
      if (line.size() <= config_.max_line_bytes) {
        HandleLine(conn, line);
      } else {
        MDC_METRIC_INC("net.rejected.line_too_long");
        Append(conn,
               TransportRejectReply(TransportReject::kLineTooLong) +
                   " limit=" + std::to_string(config_.max_line_bytes),
               now);
      }
    }
    conn.closing = true;
    conn.line_start_ms = -1;
    if (conn.out.empty()) CloseConn(conn);
    return;
  }
  conn.in.append(chunk, static_cast<size_t>(*n));
  conn.last_activity_ms = now;
  ProcessBuffer(conn, now);
  if (conn.fd >= 0 && !conn.out.empty()) FlushOutput(conn, now);
}

void SocketFrontEnd::FlushOutput(Conn& conn, int64_t now) {
  if (conn.fd < 0 || conn.out.empty()) return;
  // A write fault (injected or real) closes only this connection: a
  // retrying client reconnects and resubmits idempotently. A kill armed
  // on net.write lands here with a reply possibly half-sent.
  bool progressed = false;
  while (!conn.out.empty()) {
    StatusOr<int64_t> n =
        GuardedSend(conn.fd, conn.out.data(), conn.out.size());
    if (!n.ok()) {
      MDC_METRIC_INC("net.errors.write");
      CloseConn(conn);
      return;
    }
    if (*n < 0) {
      // Would block. Restart the stall clock only on actual progress: a
      // client that keeps sending requests but never reads must not be
      // able to refresh its write deadline with no-progress flush
      // attempts.
      if (progressed || conn.write_start_ms < 0) conn.write_start_ms = now;
      return;
    }
    progressed = true;
    conn.out.erase(0, static_cast<size_t>(*n));  // Partial writes are normal.
  }
  conn.write_start_ms = -1;
  if (conn.closing) CloseConn(conn);
}

void SocketFrontEnd::EnforceDeadlines(int64_t now) {
  for (Conn& conn : conns_) {
    if (conn.fd < 0) continue;
    if (config_.write_deadline_ms > 0 && conn.write_start_ms >= 0 &&
        now - conn.write_start_ms >= config_.write_deadline_ms) {
      // The client is not reading its replies; nothing more to say to it.
      MDC_METRIC_INC("net.reaped.write_deadline");
      CloseConn(conn);
      continue;
    }
    if (config_.read_deadline_ms > 0 && conn.line_start_ms >= 0 &&
        now - conn.line_start_ms >= config_.read_deadline_ms) {
      // Slow loris: a partial line outlived the read deadline. Typed
      // notice (best-effort) and reap.
      MDC_METRIC_INC("net.reaped.read_deadline");
      std::string reply =
          TransportRejectReply(TransportReject::kReadDeadline) + "\n";
      (void)!::send(conn.fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      CloseConn(conn);
      continue;
    }
    if (config_.idle_deadline_ms > 0 && conn.line_start_ms < 0 &&
        conn.out.empty() && !conn.waiting &&
        now - conn.last_activity_ms >= config_.idle_deadline_ms) {
      MDC_METRIC_INC("net.reaped.idle_deadline");
      std::string reply =
          TransportRejectReply(TransportReject::kIdleDeadline) + "\n";
      (void)!::send(conn.fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      CloseConn(conn);
      continue;
    }
  }
}

void SocketFrontEnd::ServeWaiters() {
  bool any_waiting = false;
  for (const Conn& conn : conns_) {
    if (conn.fd >= 0 && conn.waiting) {
      any_waiting = true;
      break;
    }
  }
  if (!any_waiting || !core_->Idle()) return;
  // One barrier for all waiters: WaitIdle() returns immediately (we just
  // observed idle, and only this thread submits) and resets the admission
  // window exactly once.
  core_->WaitIdle();
  MDC_METRIC_INC("net.waits");
  int64_t now = NowMs();
  for (Conn& conn : conns_) {
    if (conn.fd >= 0 && conn.waiting) {
      conn.waiting = false;
      Append(conn, "ok wait idle", now);
      FlushOutput(conn, now);
    }
  }
}

int SocketFrontEnd::PollTimeoutMs(int64_t now) const {
  int64_t earliest = -1;
  auto consider = [&earliest](int64_t when) {
    if (when >= 0 && (earliest < 0 || when < earliest)) earliest = when;
  };
  for (const Conn& conn : conns_) {
    if (conn.fd < 0) continue;
    if (conn.waiting) consider(now + 20);  // Poll the core for idleness.
    if (config_.read_deadline_ms > 0 && conn.line_start_ms >= 0) {
      consider(conn.line_start_ms + config_.read_deadline_ms);
    }
    if (config_.write_deadline_ms > 0 && conn.write_start_ms >= 0) {
      consider(conn.write_start_ms + config_.write_deadline_ms);
    }
    if (config_.idle_deadline_ms > 0 && conn.line_start_ms < 0 &&
        conn.out.empty() && !conn.waiting) {
      consider(conn.last_activity_ms + config_.idle_deadline_ms);
    }
  }
  if (earliest < 0) return -1;  // Nothing pending: block until I/O.
  int64_t delta = earliest - now + 1;
  if (delta < 1) return 1;
  if (delta > 60000) return 60000;
  return static_cast<int>(delta);
}

Status SocketFrontEnd::Run(int wakeup_fd, std::function<bool()> interrupted) {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("transport: Run() before Listen()");
  }
  Status loop_status;
  while (!drain_requested_) {
    if (interrupted && interrupted()) break;
    std::vector<pollfd> fds;
    fds.reserve(conns_.size() + 2);
    fds.push_back({listen_fd_, POLLIN, 0});
    if (wakeup_fd >= 0) fds.push_back({wakeup_fd, POLLIN, 0});
    const size_t base = fds.size();
    for (const Conn& conn : conns_) {
      short events = 0;
      if (!conn.closing) events |= POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }
    int64_t now = NowMs();
    int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       PollTimeoutMs(now));
    if (ready < 0) {
      if (errno == EINTR) continue;  // Loop re-checks interrupted().
      loop_status = ErrnoToStatus(errno, "poll");
      break;
    }
    now = NowMs();
    if (interrupted && interrupted()) break;
    // Connections first, listener last: freeing a reaped slot before
    // accepting keeps max_connections a cap on concurrently served
    // clients rather than an accept-ordering artifact.
    for (size_t i = 0; i < conns_.size(); ++i) {
      Conn& conn = conns_[i];
      if (conn.fd < 0) continue;
      short revents = fds[base + i].revents;
      if (revents & POLLOUT) FlushOutput(conn, now);
      if (conn.fd >= 0 && !conn.closing &&
          (revents & (POLLIN | POLLHUP | POLLERR))) {
        ReadInput(conn, now);
      }
      if (drain_requested_) break;
    }
    EnforceDeadlines(now);
    ServeWaiters();
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& conn) { return conn.fd < 0; }),
                 conns_.end());
    if (!drain_requested_ && (fds[0].revents & POLLIN)) AcceptReady(now);
  }
  Status drained = DrainAndFlush();
  return loop_status.ok() ? drained : loop_status;
}

Status SocketFrontEnd::DrainAndFlush() {
  // 1. Stop accepting: the listener closes (and the unix socket path is
  //    unlinked) before the core drains, so no client can observe a bound
  //    socket whose daemon no longer admits.
  CloseListener();
  // 2. Drain the core: in-flight job interrupted + checkpointed, queued
  //    jobs left journaled, metrics flushed durably.
  Status drained = core_->Drain();
  // 3. Answer everyone still connected: the drain issuer gets the drain
  //    status, deferred waiters get a typed draining rejection (the idle
  //    barrier they asked for will never be reached in this life).
  int64_t now = NowMs();
  for (Conn& conn : conns_) {
    if (conn.fd < 0) continue;
    if (conn.waiting) {
      conn.waiting = false;
      Append(conn, TransportRejectReply(TransportReject::kDraining), now);
    }
    if (conn.wants_drain_reply) {
      conn.wants_drain_reply = false;
      Append(conn,
             drained.ok() ? "ok drain" : "err drain " + drained.ToString(),
             now);
    }
  }
  // 4. Finish in-flight responses: flush every pending reply within the
  //    drain window, then close. A client that stopped reading forfeits
  //    its tail output when the window expires.
  const int64_t flush_deadline = now + std::max<int64_t>(config_.drain_flush_ms, 0);
  while (true) {
    std::vector<pollfd> fds;
    std::vector<size_t> index;
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].fd >= 0 && !conns_[i].out.empty()) {
        fds.push_back({conns_[i].fd, POLLOUT, 0});
        index.push_back(i);
      }
    }
    if (fds.empty()) break;
    int64_t remaining = flush_deadline - NowMs();
    if (remaining <= 0) {
      MDC_METRIC_INC("net.drain_flush_expired");
      break;
    }
    int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       static_cast<int>(std::min<int64_t>(remaining, 100)));
    if (ready < 0 && errno != EINTR) break;
    int64_t now_flush = NowMs();
    for (size_t j = 0; j < fds.size(); ++j) {
      if (fds[j].revents & (POLLOUT | POLLHUP | POLLERR)) {
        FlushOutput(conns_[index[j]], now_flush);
      }
    }
  }
  for (Conn& conn : conns_) CloseConn(conn);
  conns_.clear();
  return drained;
}

}  // namespace mdc::service
