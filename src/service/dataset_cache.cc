#include "service/dataset_cache.h"

#include <sys/stat.h>

#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/metrics.h"
#include "hierarchy/spec_parser.h"

namespace mdc::service {
namespace {

// Prefixes a derived-model hit must replay (see the header comment): the
// deterministic counters only the dispatch worker charges. svc./net. are
// charged concurrently by the front-end and batch. never runs in-service,
// so including them would make the delta capture racy or wrong.
constexpr const char* kWorkPrefixes[] = {"search.", "run.", "cmp.",
                                         "perturb.", "perm."};

bool IsWorkCounter(const std::string& name) {
  for (const char* prefix : kWorkPrefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// FNV-1a, 64-bit. Content identity only needs collision resistance against
// accident, not adversaries — a colliding dataset pair would serve one
// payload for the other, same blast radius as any content-addressed cache.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t& hash, const std::string& bytes) {
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  // Field separator: distinguishes ("ab","c") from ("a","bc").
  hash ^= 0xff;
  hash *= kFnvPrime;
}

std::string RequestKey(const std::string& input_path,
                       const std::string& schema_spec,
                       const std::string& hierarchies_path) {
  std::string key = input_path;
  key.push_back('\0');
  key += schema_spec;
  key.push_back('\0');
  key += hierarchies_path;
  return key;
}

}  // namespace

std::string DatasetCacheStats::ToString() const {
  return "hits=" + std::to_string(hits) + " misses=" + std::to_string(misses) +
         " revalidations=" + std::to_string(revalidations) +
         " evictions=" + std::to_string(evictions) +
         " capacity=" + std::to_string(evicted_capacity) +
         " stale=" + std::to_string(evicted_stale) +
         " clear=" + std::to_string(evicted_clear) +
         " entries=" + std::to_string(entries) +
         " bytes=" + std::to_string(bytes);
}

DatasetCache::DatasetCache(DatasetCacheConfig config) : config_(config) {}

DatasetCache::FileStamp DatasetCache::StampFor(const std::string& path) {
  FileStamp stamp;
  if (path.empty()) return stamp;  // "No file" stamps equal forever.
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return stamp;
  stamp.present = true;
  stamp.size = static_cast<int64_t>(st.st_size);
  stamp.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                   static_cast<int64_t>(st.st_mtim.tv_nsec);
  return stamp;
}

StatusOr<DatasetCache::Resolved> DatasetCache::Resolve(
    const std::string& input_path, const std::string& schema_spec,
    const std::string& hierarchies_path) {
  const std::string key = RequestKey(input_path, schema_spec, hierarchies_path);
  // Stamps are taken BEFORE any read: if a writer lands between the stat
  // and the read we record the old stamp against the new bytes, and the
  // next resolve revalidates — stale-data-kept is the failure mode this
  // ordering rules out.
  const FileStamp input_stamp = StampFor(input_path);
  const FileStamp hier_stamp = StampFor(hierarchies_path);

  bool known_request = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto req = requests_.find(key);
    if (req != requests_.end()) {
      known_request = true;
      if (req->second.input == input_stamp &&
          req->second.hierarchies == hier_stamp) {
        auto entry = entries_.find(req->second.content_hash);
        if (entry != entries_.end()) {
          MDC_METRIC_INC("svc.cache.hits");
          ++stats_.hits;
          TouchLocked(entry->second);
          return Resolved{req->second.content_hash, entry->second.data,
                          entry->second.hierarchies};
        }
      }
    }
  }

  // Slow path: full load, outside the lock so stats/clear pulls never wait
  // on file I/O or parsing. The sequence (and therefore every error
  // Status) is the uncached load path's, statement for statement.
  MDC_ASSIGN_OR_RETURN(Schema schema, ParseSchemaSpec(schema_spec));
  MDC_ASSIGN_OR_RETURN(std::string csv, ReadFileToString(input_path));
  MDC_ASSIGN_OR_RETURN(Dataset parsed, Dataset::FromCsv(schema, csv));
  auto data = std::make_shared<const Dataset>(std::move(parsed));
  HierarchySet hierarchies;
  std::string hier_spec;
  if (!hierarchies_path.empty()) {
    MDC_ASSIGN_OR_RETURN(hier_spec, ReadFileToString(hierarchies_path));
    MDC_ASSIGN_OR_RETURN(hierarchies,
                         ParseHierarchySpec(data->schema(), hier_spec));
  }

  uint64_t hash = kFnvOffset;
  HashBytes(hash, schema_spec);
  HashBytes(hash, csv);
  HashBytes(hash, hier_spec);

  std::lock_guard<std::mutex> lock(mu_);
  if (known_request) {
    // The stamps moved (or the entry was evicted) — this load was a
    // content recheck, which is what `revalidations` counts.
    MDC_METRIC_INC("svc.cache.revalidations");
    ++stats_.revalidations;
  }
  auto& request = requests_[key];
  const uint64_t old_hash = known_request ? request.content_hash : 0;
  request.input = input_stamp;
  request.hierarchies = hier_stamp;
  request.content_hash = hash;

  auto entry = entries_.find(hash);
  if (entry != entries_.end()) {
    // Same content (revalidated touch, or a second path to the same
    // bytes): the freshly parsed copy is discarded for the resident one.
    if (known_request) {
      MDC_METRIC_INC("svc.cache.hits");
      ++stats_.hits;
    } else {
      MDC_METRIC_INC("svc.cache.misses");
      ++stats_.misses;
    }
    TouchLocked(entry->second);
    return Resolved{hash, entry->second.data, entry->second.hierarchies};
  }

  MDC_METRIC_INC("svc.cache.misses");
  ++stats_.misses;
  if (known_request && old_hash != hash) {
    // The content behind this request changed. Drop the old entry unless
    // another request still resolves to it.
    bool referenced = false;
    for (const auto& [other_key, other] : requests_) {
      if (other_key != key && other.content_hash == old_hash) {
        referenced = true;
        break;
      }
    }
    if (!referenced && entries_.count(old_hash) > 0) {
      EvictLocked(old_hash, EvictReason::kStale);
    }
  }

  Entry fresh;
  fresh.data = data;
  fresh.hierarchies = hierarchies;
  fresh.base_bytes = csv.size() + hier_spec.size();
  fresh.bytes = fresh.base_bytes;
  total_bytes_ += fresh.bytes;
  auto [it, inserted] = entries_.emplace(hash, std::move(fresh));
  TouchLocked(it->second);
  EnforceBudgetLocked(hash);
  PublishGaugesLocked();
  return Resolved{hash, std::move(data), std::move(hierarchies)};
}

StatusOr<std::shared_ptr<const EncodedBundle>> DatasetCache::Encoded(
    const Resolved& resolved) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto entry = entries_.find(resolved.content_hash);
    if (entry != entries_.end() && entry->second.encoded != nullptr) {
      TouchLocked(entry->second);
      return entry->second.encoded;
    }
  }
  // Build outside the lock (the expensive part). The single dispatch
  // worker is the only caller, so there is no duplicated-build race to
  // guard against — and a duplicate would only waste work, not corrupt.
  MDC_ASSIGN_OR_RETURN(
      std::shared_ptr<const EncodedBundle> bundle,
      BuildEncodedBundle(*resolved.data, resolved.hierarchies));
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = entries_.find(resolved.content_hash);
  if (entry != entries_.end() && entry->second.encoded == nullptr) {
    entry->second.encoded = bundle;
    entry->second.bytes += bundle->Bytes();
    total_bytes_ += bundle->Bytes();
    TouchLocked(entry->second);
    EnforceBudgetLocked(resolved.content_hash);
    PublishGaugesLocked();
  }
  return bundle;
}

std::optional<CachedModel> DatasetCache::FindModel(uint64_t content_hash,
                                                   const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = entries_.find(content_hash);
  if (entry == entries_.end()) return std::nullopt;
  auto model = entry->second.models.find(key);
  if (model == entry->second.models.end()) return std::nullopt;
  MDC_METRIC_INC("svc.cache.model_hits");
  TouchLocked(entry->second);
  // Replay the deterministic counters the skipped build would have
  // charged — this is what keeps counters.txt byte-identical between a
  // cache-on and a cache-off run of the same script.
  metrics::MergeCounters(model->second.counters);
  return model->second.model;
}

void DatasetCache::PutModel(uint64_t content_hash, const std::string& key,
                            const CachedModel& model,
                            const std::map<std::string, uint64_t>& counter_delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = entries_.find(content_hash);
  if (entry == entries_.end()) return;  // Evicted since Resolve; skip.
  if (entry->second.models.count(key) > 0) return;
  MDC_METRIC_INC("svc.cache.model_puts");
  StoredModel stored;
  stored.model = model;
  stored.counters = counter_delta;
  stored.bytes = key.size() + sizeof(StoredModel) +
                 model.matrix->rows() * model.matrix->cols() * sizeof(double);
  for (const auto& [name, value] : counter_delta) {
    stored.bytes += name.size() + sizeof(value);
  }
  entry->second.bytes += stored.bytes;
  total_bytes_ += stored.bytes;
  entry->second.models.emplace(key, std::move(stored));
  TouchLocked(entry->second);
  EnforceBudgetLocked(content_hash);
  PublishGaugesLocked();
}

uint64_t DatasetCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t evicted = 0;
  while (!entries_.empty()) {
    EvictLocked(entries_.begin()->first, EvictReason::kClear);
    ++evicted;
  }
  requests_.clear();
  PublishGaugesLocked();
  return evicted;
}

DatasetCacheStats DatasetCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DatasetCacheStats out = stats_;
  out.entries = entries_.size();
  out.bytes = total_bytes_;
  return out;
}

std::map<std::string, uint64_t> DatasetCache::WorkCounterSnapshot() {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : metrics::Snapshot().counters) {
    if (IsWorkCounter(name)) out[name] = value;
  }
  return out;
}

std::map<std::string, uint64_t> DatasetCache::WorkCounterDelta(
    const std::map<std::string, uint64_t>& before) {
  std::map<std::string, uint64_t> delta;
  for (const auto& [name, value] : metrics::Snapshot().counters) {
    if (!IsWorkCounter(name)) continue;
    auto it = before.find(name);
    const uint64_t prior = it == before.end() ? 0 : it->second;
    if (value > prior) delta[name] = value - prior;
  }
  return delta;
}

void DatasetCache::EvictLocked(uint64_t hash, EvictReason reason) {
  auto entry = entries_.find(hash);
  if (entry == entries_.end()) return;
  total_bytes_ -= entry->second.bytes;
  entries_.erase(entry);
  // Requests pointing at the evicted content re-resolve as misses.
  for (auto it = requests_.begin(); it != requests_.end();) {
    if (it->second.content_hash == hash) {
      it = requests_.erase(it);
    } else {
      ++it;
    }
  }
  MDC_METRIC_INC("svc.cache.evictions");
  ++stats_.evictions;
  switch (reason) {
    case EvictReason::kCapacity:
      MDC_METRIC_INC("svc.cache.evictions.capacity");
      ++stats_.evicted_capacity;
      break;
    case EvictReason::kStale:
      MDC_METRIC_INC("svc.cache.evictions.stale");
      ++stats_.evicted_stale;
      break;
    case EvictReason::kClear:
      MDC_METRIC_INC("svc.cache.evictions.clear");
      ++stats_.evicted_clear;
      break;
  }
}

void DatasetCache::EnforceBudgetLocked(uint64_t keep_hash) {
  if (config_.max_bytes == 0) return;
  while (total_bytes_ > config_.max_bytes && entries_.size() > 1) {
    uint64_t victim = 0;
    uint64_t oldest = 0;
    bool found = false;
    for (const auto& [hash, entry] : entries_) {
      if (hash == keep_hash) continue;  // Never evict the active entry.
      if (!found || entry.last_use < oldest) {
        victim = hash;
        oldest = entry.last_use;
        found = true;
      }
    }
    if (!found) return;
    EvictLocked(victim, EvictReason::kCapacity);
  }
}

void DatasetCache::TouchLocked(Entry& entry) { entry.last_use = ++use_tick_; }

void DatasetCache::PublishGaugesLocked() {
  metrics::GetGauge("svc.cache.bytes").Set(static_cast<int64_t>(total_bytes_));
  metrics::GetGauge("svc.cache.entries")
      .Set(static_cast<int64_t>(entries_.size()));
}

}  // namespace mdc::service
