// Resident dataset cache for the mdcd service (`--cache-bytes`,
// `--no-cache`, the `cache stats|clear` protocol verbs).
//
// The paper's workload is many-comparisons-over-one-dataset: §5 ranks many
// algorithm configurations against the same census microdata. Without a
// cache every service job re-reads its CSV, re-parses the schema and
// hierarchy spec, and re-dictionary-encodes the QI columns from scratch.
// DatasetCache makes that work resident across jobs, keyed by *content*:
//
//   requests:  (input path, schema spec, hierarchies path)
//                 -> (file stamps, content hash)          [staleness layer]
//   entries:   content hash -> { Dataset, HierarchySet,
//                                lazy EncodedBundle,
//                                derived permutation models }   [LRU layer]
//
// A request whose files still carry their recorded (size, mtime) resolves
// without touching file contents (svc.cache.hits). A stamp mismatch
// triggers revalidation (svc.cache.revalidations): the bytes are re-read
// and re-hashed; an unchanged hash is still a hit (the stamps are
// refreshed), a changed hash is a miss that evicts the stale entry
// (reason `stale`) and loads fresh bytes. Deleting a path behind a cached
// request surfaces the same Status a cold load would.
//
// The byte budget (`max_bytes`) covers the raw file bytes plus the
// encoded tables (EncodedView::CodeBytes + LevelCodec::TableBytes — the
// same accounting the RunContext memory hooks charge) plus derived model
// storage. Exceeding it evicts least-recently-used entries (reason
// `capacity`), never the entry being resolved: a single oversized dataset
// is served, not thrashed. `cache clear` evicts everything (reason
// `clear`).
//
// Correctness contract (proven by tests/service_cache_test):
//   - job artifacts are byte-identical with the cache on or off;
//   - so are the deterministic counters, excluding svc.cache.* itself.
// The first holds because the cache only shares immutable inputs (the
// Dataset, the EncodedBundle) that algorithms cannot tell apart from a
// fresh load. The second needs one extra mechanism: a derived-model hit
// (PutModel/FindModel) legitimately *skips* algorithm work that would
// have charged run./search./perturb./perm. counters, so PutModel stores
// the deterministic-counter delta captured while building the model and
// FindModel replays it through metrics::MergeCounters. svc./net./batch.
// prefixes are excluded from capture — other threads (the event loop)
// charge them concurrently, and the skipped work never touches them.
//
// Threading: the single dispatch worker is the only mutator; the
// front-end event loop reads stats and may clear. All map state is under
// one mutex, but file loads and hashing happen *outside* it, so a
// `metrics` or `cache stats` pull never waits on a load in progress.
// Everything handed out is shared_ptr-owned: eviction (or Clear) during
// an in-flight job never invalidates that job's data.

#ifndef MDC_SERVICE_DATASET_CACHE_H_
#define MDC_SERVICE_DATASET_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "anonymize/encoded_eval.h"
#include "common/status.h"
#include "core/property_matrix.h"
#include "hierarchy/scheme.h"
#include "table/dataset.h"

namespace mdc::service {

struct DatasetCacheConfig {
  // Total byte budget across all entries; 0 = unbounded (entries leave
  // only via staleness or `cache clear`).
  uint64_t max_bytes = 256ull << 20;
};

// One merged view of the counters plus the current gauges, rendered by
// ToString() as the `ok cache ...` protocol reply payload.
struct DatasetCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t revalidations = 0;
  uint64_t evictions = 0;          // Sum of the three typed reasons.
  uint64_t evicted_capacity = 0;
  uint64_t evicted_stale = 0;
  uint64_t evicted_clear = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;

  // "hits=.. misses=.. revalidations=.. evictions=.. capacity=.. stale=..
  //  clear=.. entries=.. bytes=.." — fixed order, parseable by tests.
  std::string ToString() const;
};

// A cached permutation model: the two Def.-1 property vectors packed as a
// 2-row PropertyMatrix (row 0 privacy, row 1 utility, names already
// release-qualified) plus the release row count.
struct CachedModel {
  size_t rows = 0;
  std::shared_ptr<const PropertyMatrix> matrix;
};

class DatasetCache {
 public:
  // What a job gets back from Resolve: shared immutable inputs plus the
  // content hash that keys Encoded()/FindModel()/PutModel().
  struct Resolved {
    uint64_t content_hash = 0;
    std::shared_ptr<const Dataset> data;
    HierarchySet hierarchies;
  };

  explicit DatasetCache(DatasetCacheConfig config);

  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  // Loads (or revalidates) the file-backed dataset request. The load
  // sequence — parse schema, read input CSV, parse rows, read + parse the
  // hierarchy spec — matches the uncached path statement for statement,
  // so error Statuses are identical with the cache on or off.
  // `hierarchies_path` may be empty (mondrian/cluster/perturb jobs).
  StatusOr<Resolved> Resolve(const std::string& input_path,
                             const std::string& schema_spec,
                             const std::string& hierarchies_path);

  // The entry's dictionary-encode bundle, built on first use and resident
  // after. Build failures are returned (callers fall back to a fresh
  // build so the failing Status surfaces exactly where it always did).
  StatusOr<std::shared_ptr<const EncodedBundle>> Encoded(
      const Resolved& resolved);

  // Derived permutation-model store. FindModel replays the stored
  // deterministic-counter delta on hit (see file comment). PutModel is a
  // no-op if the entry was evicted since Resolve.
  std::optional<CachedModel> FindModel(uint64_t content_hash,
                                       const std::string& key);
  void PutModel(uint64_t content_hash, const std::string& key,
                const CachedModel& model,
                const std::map<std::string, uint64_t>& counter_delta);

  // Evicts everything (reason `clear`); returns the evicted entry count.
  uint64_t Clear();

  DatasetCacheStats GetStats() const;

  // Snapshot/delta of the counter prefixes a derived-model hit skips
  // (search., run., cmp., perturb., perm. — deterministic prefixes that
  // only the dispatch worker charges). PutModel callers bracket the model
  // build with these.
  static std::map<std::string, uint64_t> WorkCounterSnapshot();
  static std::map<std::string, uint64_t> WorkCounterDelta(
      const std::map<std::string, uint64_t>& before);

 private:
  struct FileStamp {
    bool present = false;  // stat() succeeded.
    int64_t size = 0;
    int64_t mtime_ns = 0;
    bool operator==(const FileStamp&) const = default;
  };
  struct RequestState {
    FileStamp input;
    FileStamp hierarchies;
    uint64_t content_hash = 0;
  };
  struct StoredModel {
    CachedModel model;
    std::map<std::string, uint64_t> counters;
    uint64_t bytes = 0;
  };
  struct Entry {
    std::shared_ptr<const Dataset> data;
    HierarchySet hierarchies;
    std::shared_ptr<const EncodedBundle> encoded;  // Null until first use.
    std::map<std::string, StoredModel> models;
    uint64_t base_bytes = 0;   // Raw input + hierarchy-spec bytes.
    uint64_t bytes = 0;        // base + encoded + models.
    uint64_t last_use = 0;     // LRU tick.
  };
  enum class EvictReason { kCapacity, kStale, kClear };

  static FileStamp StampFor(const std::string& path);

  // All four require mu_ held.
  void EvictLocked(uint64_t hash, EvictReason reason);
  void EnforceBudgetLocked(uint64_t keep_hash);
  void TouchLocked(Entry& entry);
  void PublishGaugesLocked();

  const DatasetCacheConfig config_;

  mutable std::mutex mu_;
  std::map<std::string, RequestState> requests_;  // request key -> stamps.
  std::map<uint64_t, Entry> entries_;             // content hash -> entry.
  uint64_t total_bytes_ = 0;
  uint64_t use_tick_ = 0;
  DatasetCacheStats stats_;  // entries/bytes maintained alongside.
};

}  // namespace mdc::service

#endif  // MDC_SERVICE_DATASET_CACHE_H_
