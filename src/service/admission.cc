#include "service/admission.h"

#include "common/check.h"

namespace mdc::service {

const char* AdmitDecisionName(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::kAdmitted:
      return "admitted";
    case AdmitDecision::kOverloadedWindow:
      return "overloaded_window";
    case AdmitDecision::kOverloadedTenant:
      return "overloaded_tenant";
    case AdmitDecision::kDuplicateId:
      return "duplicate_id";
    case AdmitDecision::kDraining:
      return "draining";
    case AdmitDecision::kInvalidSpec:
      return "invalid_spec";
  }
  return "unknown";
}

std::optional<AdmitDecision> AdmitDecisionFromName(std::string_view name) {
  for (auto decision :
       {AdmitDecision::kAdmitted, AdmitDecision::kOverloadedWindow,
        AdmitDecision::kOverloadedTenant, AdmitDecision::kDuplicateId,
        AdmitDecision::kDraining, AdmitDecision::kInvalidSpec}) {
    if (name == AdmitDecisionName(decision)) return decision;
  }
  return std::nullopt;
}

bool IsOverloaded(AdmitDecision decision) {
  return decision == AdmitDecision::kOverloadedWindow ||
         decision == AdmitDecision::kOverloadedTenant;
}

AdmissionQueue::AdmissionQueue(AdmissionConfig config)
    : config_(config) {
  MDC_CHECK_MSG(config_.quantum > 0, "admission quantum must be positive");
}

AdmitDecision AdmissionQueue::Admit(const JobSpec& spec) {
  if (draining_) return AdmitDecision::kDraining;
  if (!IsValidToken(spec.id) || !IsValidToken(spec.tenant) ||
      spec.cost == 0) {
    return AdmitDecision::kInvalidSpec;
  }
  if (queued_ids_.count(spec.id) != 0) return AdmitDecision::kDuplicateId;
  if (window_cost_ + spec.cost > config_.window_capacity) {
    return AdmitDecision::kOverloadedWindow;
  }
  if (config_.tenant_budget > 0) {
    auto it = tenants_.find(spec.tenant);
    uint64_t tenant_cost = it == tenants_.end() ? 0 : it->second.window_cost;
    if (tenant_cost + spec.cost > config_.tenant_budget) {
      return AdmitDecision::kOverloadedTenant;
    }
  }
  Requeue(spec);
  return AdmitDecision::kAdmitted;
}

void AdmissionQueue::Requeue(const JobSpec& spec) {
  auto [it, inserted] = tenants_.try_emplace(spec.tenant);
  if (inserted) ring_.push_back(spec.tenant);
  it->second.window_cost += spec.cost;
  window_cost_ += spec.cost;
  queued_ids_.insert(spec.id);
  it->second.jobs.push_back(spec);
  ++queued_;
}

std::optional<JobSpec> AdmissionQueue::Dequeue() {
  if (queued_ == 0) return std::nullopt;
  // DRR: visit tenants in arrival order; a visit refills the deficit; a
  // job dispatches when its cost fits. Terminates because some tenant is
  // non-empty and every full ring pass grows its deficit by quantum.
  while (true) {
    MDC_CHECK(!ring_.empty());
    Tenant& tenant = tenants_[ring_[ring_pos_]];
    if (tenant.jobs.empty()) {
      tenant.deficit = 0;
      ring_pos_ = (ring_pos_ + 1) % ring_.size();
      continue;
    }
    if (tenant.deficit >= tenant.jobs.front().cost) {
      JobSpec job = std::move(tenant.jobs.front());
      tenant.jobs.pop_front();
      tenant.deficit -= job.cost;
      if (tenant.jobs.empty()) tenant.deficit = 0;
      queued_ids_.erase(job.id);
      --queued_;
      return job;
    }
    tenant.deficit += config_.quantum;
    ring_pos_ = (ring_pos_ + 1) % ring_.size();
  }
}

void AdmissionQueue::Abandon(const JobSpec& spec) {
  auto it = tenants_.find(spec.tenant);
  if (it == tenants_.end() || it->second.jobs.empty() ||
      it->second.jobs.back().id != spec.id) {
    return;  // Not the newest entry — nothing to roll back.
  }
  it->second.jobs.pop_back();
  it->second.window_cost -= spec.cost;
  window_cost_ -= spec.cost;
  queued_ids_.erase(spec.id);
  --queued_;
}

void AdmissionQueue::ResetWindow() {
  window_cost_ = 0;
  for (auto& [name, tenant] : tenants_) {
    (void)name;
    tenant.window_cost = 0;
  }
}

void AdmissionQueue::CloseForDrain() { draining_ = true; }

std::vector<std::string> AdmissionQueue::QueuedIds() const {
  // Simulate the DRR dispatch on a copy — the order the worker will see.
  AdmissionQueue copy(*this);
  std::vector<std::string> ids;
  ids.reserve(queued_);
  while (auto job = copy.Dequeue()) {
    ids.push_back(job->id);
  }
  return ids;
}

}  // namespace mdc::service
