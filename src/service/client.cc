#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/durable_io.h"
#include "common/metrics.h"
#include "core/batch_runner.h"

namespace mdc::service {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(int64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Waits for `events` on `fd` until `deadline_ms` (absolute NowMs clock).
// OK when ready; kDeadlineExceeded when the budget runs out.
Status PollFor(int fd, short events, int64_t deadline_ms,
               const char* what) {
  while (true) {
    int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return Status::DeadlineExceeded(std::string("client: ") + what +
                                      " timed out");
    }
    pollfd pfd{fd, events, 0};
    int ready =
        ::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(remaining, 1000)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoToStatus(errno, std::string("client: poll for ") + what);
    }
    if (ready > 0) return Status::Ok();
  }
}

// Typed transport rejections that mean "not now": the daemon shed or
// reaped the connection, not the request content — reconnect and retry.
// line_too_long is content: the same line would be rejected again.
bool IsTransientTransportReply(std::string_view reply) {
  constexpr std::string_view kPrefix = "err transport ";
  if (reply.substr(0, kPrefix.size()) != kPrefix) return false;
  std::string_view name = reply.substr(kPrefix.size());
  if (size_t space = name.find(' '); space != std::string_view::npos) {
    name = name.substr(0, space);
  }
  return name != TransportRejectName(TransportReject::kLineTooLong);
}

}  // namespace

ServiceClient::ServiceClient(ClientConfig config)
    : config_(std::move(config)) {
  auto address_or = ParseSocketAddress(config_.target);
  if (address_or.ok()) {
    address_ = *address_or;
  } else {
    address_status_ = address_or.status();
  }
}

ServiceClient::~ServiceClient() { Disconnect(); }

void ServiceClient::Disconnect() {
  if (fd_ >= 0) {
    while (::close(fd_) < 0 && errno == EINTR) {
    }
    fd_ = -1;
  }
  inbuf_.clear();
}

Status ServiceClient::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  MDC_RETURN_IF_ERROR(address_status_);
  const int64_t deadline = NowMs() + config_.connect_timeout_ms;
  int fd = -1;
  int rc = -1;
  if (address_.kind == SocketAddress::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoToStatus(errno, "client: socket(AF_UNIX)");
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, address_.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoToStatus(errno, "client: socket(AF_INET)");
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(address_.port));
    ::inet_pton(AF_INET, address_.host.c_str(), &addr.sin_addr);
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  }
  if (rc < 0 && errno != EINPROGRESS) {
    Status status = ErrnoToStatus(errno, "client: connect " + config_.target);
    ::close(fd);
    return status;
  }
  if (rc < 0) {  // EINPROGRESS: wait for the handshake, then check it.
    if (Status status = PollFor(fd, POLLOUT, deadline, "connect");
        !status.ok()) {
      ::close(fd);
      return status;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      Status status =
          ErrnoToStatus(err != 0 ? err : errno,
                        "client: connect " + config_.target);
      ::close(fd);
      return status;
    }
  }
  fd_ = fd;
  inbuf_.clear();
  if (ever_connected_) {
    ++reconnects_;
    MDC_METRIC_INC("client.reconnects");
  }
  ever_connected_ = true;
  MDC_METRIC_INC("client.connects");
  return Status::Ok();
}

StatusOr<std::string> ServiceClient::RoundTrip(const std::string& line,
                                               int64_t timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  std::string frame = line;
  frame.push_back('\n');
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        MDC_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline, "send"));
        continue;
      }
      return ErrnoToStatus(errno, "client: send");
    }
    sent += static_cast<size_t>(n);
  }
  while (true) {
    if (size_t pos = inbuf_.find('\n'); pos != std::string::npos) {
      std::string reply = inbuf_.substr(0, pos);
      inbuf_.erase(0, pos + 1);
      if (!reply.empty() && reply.back() == '\r') reply.pop_back();
      return reply;
    }
    if (inbuf_.size() > config_.max_reply_bytes) {
      return Status::Internal("client: reply exceeds " +
                              std::to_string(config_.max_reply_bytes) +
                              " bytes without a newline");
    }
    MDC_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline, "recv"));
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoToStatus(errno, "client: recv");
    }
    if (n == 0) {
      return Status::Internal("client: connection closed before reply");
    }
    inbuf_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<std::string> ServiceClient::Request(const std::string& line) {
  return RequestWithTimeout(line, config_.request_timeout_ms);
}

StatusOr<std::string> ServiceClient::RequestWithTimeout(
    const std::string& line, int64_t timeout_ms) {
  if (timeout_ms <= 0) timeout_ms = config_.request_timeout_ms;
  // Salted by the request line: two clients retrying the same incident
  // decorrelate by seed, two requests by one client decorrelate by salt.
  BackoffSequence backoff(config_.backoff_base_ms, config_.backoff_max_ms,
                          config_.backoff_jitter, config_.backoff_jitter_seed,
                          BackoffSalt(line));
  Status last = Status::Internal("client: no attempt made");
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      MDC_METRIC_INC("client.retries");
      SleepMs(backoff.NextDelayMs(attempt));
    }
    if (Status status = EnsureConnected(); !status.ok()) {
      last = status;
      continue;
    }
    auto reply = RoundTrip(line, timeout_ms);
    if (!reply.ok()) {
      // The connection state is unknown (half-sent request, half-read
      // reply, daemon possibly dead): drop it and retry from a fresh
      // connect. Idempotence of the retried request is the protocol's
      // job (duplicate_id), not this layer's.
      last = reply.status();
      Disconnect();
      continue;
    }
    if (IsTransientTransportReply(*reply)) {
      last = Status::Internal("client: transport rejection: " + *reply);
      Disconnect();
      continue;
    }
    return reply;
  }
  return last;
}

StatusOr<SubmitResult> ServiceClient::Submit(const std::string& spec_line) {
  MDC_ASSIGN_OR_RETURN(std::string reply,
                       Request("submit " + spec_line));
  SubmitResult result;
  result.reply = reply;
  // "ok <id> admitted" | "rejected <id> <decision>" | "err ...".
  std::vector<std::string> parts;
  {
    size_t start = 0;
    while (start <= reply.size()) {
      size_t space = reply.find(' ', start);
      if (space == std::string::npos) {
        parts.push_back(reply.substr(start));
        break;
      }
      parts.push_back(reply.substr(start, space - start));
      start = space + 1;
    }
  }
  if (parts.size() == 3 && parts[0] == "ok" && parts[2] == "admitted") {
    result.decision = AdmitDecision::kAdmitted;
    result.id = parts[1];
    return result;
  }
  if (parts.size() == 3 && parts[0] == "rejected") {
    auto decision = AdmitDecisionFromName(parts[2]);
    if (!decision.has_value()) {
      return Status::Internal("client: unknown rejection in reply '" + reply +
                              "'");
    }
    result.decision = *decision;
    result.id = parts[1];
    return result;
  }
  if (!parts.empty() && parts[0] == "err") {
    if (parts.size() >= 2 && parts[1] == "submit") {
      return Status::InvalidArgument(reply);
    }
    return Status::Internal(reply);
  }
  return Status::Internal("client: unparsable submit reply '" + reply + "'");
}

StatusOr<std::string> ServiceClient::GetStatusLine() {
  MDC_ASSIGN_OR_RETURN(std::string reply, Request("status"));
  constexpr std::string_view kPrefix = "ok status ";
  if (reply.size() < kPrefix.size() ||
      std::string_view(reply).substr(0, kPrefix.size()) != kPrefix) {
    return Status::Internal("client: unexpected status reply '" + reply + "'");
  }
  return reply.substr(kPrefix.size());
}

StatusOr<std::string> ServiceClient::GetMetricsJson() {
  MDC_ASSIGN_OR_RETURN(std::string reply, Request("metrics"));
  constexpr std::string_view kPrefix = "ok metrics ";
  if (reply.size() < kPrefix.size() ||
      std::string_view(reply).substr(0, kPrefix.size()) != kPrefix) {
    return Status::Internal("client: unexpected metrics reply '" + reply +
                            "'");
  }
  return reply.substr(kPrefix.size());
}

StatusOr<std::string> ServiceClient::GetCacheStatsLine() {
  MDC_ASSIGN_OR_RETURN(std::string reply, Request("cache stats"));
  constexpr std::string_view kPrefix = "ok cache ";
  if (reply.size() < kPrefix.size() ||
      std::string_view(reply).substr(0, kPrefix.size()) != kPrefix) {
    return Status::Internal("client: unexpected cache reply '" + reply + "'");
  }
  return reply.substr(kPrefix.size());
}

StatusOr<std::string> ServiceClient::CacheClear() {
  MDC_ASSIGN_OR_RETURN(std::string reply, Request("cache clear"));
  constexpr std::string_view kPrefix = "ok cache ";
  if (reply.size() < kPrefix.size() ||
      std::string_view(reply).substr(0, kPrefix.size()) != kPrefix) {
    return Status::Internal("client: unexpected cache reply '" + reply + "'");
  }
  return reply.substr(kPrefix.size());
}

Status ServiceClient::WaitIdle(int64_t timeout_ms) {
  MDC_ASSIGN_OR_RETURN(std::string reply,
                       RequestWithTimeout("wait", timeout_ms));
  if (reply != "ok wait idle") {
    return Status::Internal("client: unexpected wait reply '" + reply + "'");
  }
  return Status::Ok();
}

Status ServiceClient::Drain(int64_t timeout_ms) {
  MDC_ASSIGN_OR_RETURN(std::string reply,
                       RequestWithTimeout("drain", timeout_ms));
  // The daemon closes the connection right after this reply; drop our end
  // now so a later Request() reconnects instead of reading stale EOF.
  Disconnect();
  if (reply == "ok drain") return Status::Ok();
  return Status::Internal("client: drain failed: " + reply);
}

}  // namespace mdc::service
