// Resilient socket front-end for the mdcd service.
//
// SocketFrontEnd puts a real network surface in front of ServiceCore: a
// poll(2)-driven single-threaded event loop accepting Unix-domain or TCP
// connections that speak the same newline protocol as the stdin front-end
// (submit / status / wait / drain, docs/service.md). The loop owns every
// connection's buffers, so one slow or hostile client can never block the
// others — robustness is structural, not best-effort:
//
//  - **Per-connection deadlines.** A connection holding a partial request
//    line longer than `read_deadline_ms` (the slow-loris shape: one byte
//    per second, never a newline) is reaped with a typed notice; one that
//    sends nothing at all for `idle_deadline_ms` is reaped as idle; one
//    that stops reading its replies for `write_deadline_ms` while output
//    is pending is reaped as write-stalled. Reaping one connection never
//    delays another — the poll timeout is the earliest pending deadline.
//  - **Bounded frames.** A request line longer than `max_line_bytes` is
//    rejected with the typed `line_too_long` reply and the connection is
//    closed; the buffer is freed immediately, so memory per connection is
//    bounded by the cap, not by client behavior.
//  - **Transport-level shedding.** At `max_connections` open connections,
//    a new accept is answered with the typed `overloaded_connections`
//    reply and closed. This composes with the AdmissionQueue: transport
//    sheds connections, admission sheds jobs, and both rejections are
//    typed so a client always learns which layer refused it.
//  - **Syscall-fault injection.** Every accept/read/write/close syscall
//    site triggers a `net.*` failpoint (common/failpoint.h) supporting
//    error and kill actions with skip/count/period arming. The socket
//    kill-torture harness lands SIGKILL inside these exact windows; error
//    arming exercises the transient-fault paths (an injected read or
//    write error closes only the affected connection).
//  - **EINTR / partial-I/O correctness.** All reads and writes tolerate
//    EINTR, EAGAIN, and short transfers; replies are buffered and flushed
//    as POLLOUT allows.
//  - **Graceful drain.** A `drain` request or a signal (the CLI's
//    self-pipe fd is polled beside the sockets) stops accepting, drains
//    the core (in-flight job checkpointed, queued jobs left journaled),
//    then flushes every pending reply within `drain_flush_ms` before
//    closing — in-flight responses finish; only then do the sockets go
//    away.
//
// Event counts are exported as `net.*` metrics under the deterministic-
// counter contract: counters are charged at protocol commit points (a
// line fully parsed, a connection accepted/shed/closed), so for a fixed
// client script they are independent of worker-thread count and I/O
// chunking. Deadline reaps count the client's behavior (it idled past the
// deadline), never the scheduler's.
//
// The protocol itself is shared with the stdin front-end through
// HandleProtocolLine so both surfaces answer byte-identically.

#ifndef MDC_SERVICE_TRANSPORT_H_
#define MDC_SERVICE_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "service/service_core.h"

namespace mdc::service {

// "unix:<path>" or "tcp:<ipv4>:<port>" (numeric host only — the daemon
// does not resolve names; port 0 binds an ephemeral port).
struct SocketAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix.
  std::string host;  // kTcp, numeric IPv4.
  int port = 0;      // kTcp.

  std::string ToString() const;
};

StatusOr<SocketAddress> ParseSocketAddress(std::string_view text);

struct TransportConfig {
  std::string listen;            // SocketAddress syntax.
  int max_connections = 64;      // Accepts beyond this are shed, typed.
  uint64_t max_line_bytes = 64 * 1024;  // Request-line cap (frame bound).
  // Deadlines in ms; 0 disables the corresponding reap.
  int64_t read_deadline_ms = 10000;   // Partial line pending (slow loris).
  int64_t idle_deadline_ms = 60000;   // No request activity at all.
  int64_t write_deadline_ms = 10000;  // Output pending, client not reading.
  int64_t drain_flush_ms = 2000;      // Reply-flush window during drain.
};

// Typed transport-level rejection/reap reasons; the wire form is
// "err transport <name>[ detail]". Like AdmitDecision these are the
// contract: a client can dispatch on the token.
enum class TransportReject : uint32_t {
  kLineTooLong = 0,
  kOverloadedConnections = 1,
  kReadDeadline = 2,
  kIdleDeadline = 3,
  kWriteDeadline = 4,
  kDraining = 5,
};
const char* TransportRejectName(TransportReject reject);

// "err transport <name>" — the reply prefix both front-ends emit for a
// transport rejection (the stdin path reuses it for the oversize-line
// rejection so the two surfaces stay byte-compatible).
std::string TransportRejectReply(TransportReject reject);

// Failpoint-instrumented socket syscalls (sites net.accept / net.read /
// net.write / net.close). Each fires its failpoint *before* the syscall,
// so an armed kill action lands inside the syscall window and an armed
// error action surfaces here as the injected Status; real syscall
// failures map through ErrnoToStatus. The event loop consumes these, and
// tests/failpoint_test.cc drives them directly to prove every net.* site
// fires and propagates cleanly.
//
// GuardedAccept returns the accepted fd, or -1 when the pending queue is
// drained (EAGAIN). GuardedRecv/GuardedSend return the transfer size
// (0 = orderly EOF for recv), or -1 when the call would block (EAGAIN,
// and EINTR for recv — the loop simply re-polls). GuardedClose always
// closes the fd — a leaked descriptor is never an acceptable failure
// mode — and returns the injected status when the site was armed.
StatusOr<int> GuardedAccept(int listener_fd);
StatusOr<int64_t> GuardedRecv(int fd, char* buffer, size_t capacity);
StatusOr<int64_t> GuardedSend(int fd, const char* data, size_t size);
Status GuardedClose(int fd);

// One protocol request, shared by the stdin and socket front-ends. The
// result is either an immediate reply line or a barrier the front-end
// must execute (wait-idle, drain) before answering.
struct ProtocolAction {
  enum class Kind { kReply, kWaitIdle, kDrain };
  Kind kind = Kind::kReply;
  std::string reply;  // kReply only; full reply line, no newline.
};
ProtocolAction HandleProtocolLine(ServiceCore& core, const std::string& line);

class SocketFrontEnd {
 public:
  SocketFrontEnd(ServiceCore* core, TransportConfig config);
  ~SocketFrontEnd();

  SocketFrontEnd(const SocketFrontEnd&) = delete;
  SocketFrontEnd& operator=(const SocketFrontEnd&) = delete;

  // Parses config.listen, binds, and listens. For tcp with port 0 the
  // bound ephemeral port is resolved into bound_address().
  Status Listen();

  // Resolved address ("unix:/path" or "tcp:127.0.0.1:41234"); valid after
  // Listen() succeeds.
  const std::string& bound_address() const { return bound_address_; }

  // Runs the event loop until a `drain` request arrives on any connection
  // or `interrupted` returns true (the CLI passes a check of its signal
  // flag, with `wakeup_fd` the read end of the signal self-pipe so a
  // racing signal is level-triggered; pass -1/nullptr to disable).
  // Performs the graceful drain — core drained, replies flushed,
  // connections closed, listener removed — before returning. The returned
  // status is the drain status (or the poll-loop failure that forced an
  // early drain).
  Status Run(int wakeup_fd, std::function<bool()> interrupted);

 private:
  struct Conn {
    int fd = -1;
    std::string in;   // Bytes received, not yet parsed into lines.
    std::string out;  // Replies not yet written.
    bool waiting = false;       // Deferred `wait`; replied at idle.
    bool closing = false;       // Flush out, then close.
    bool wants_drain_reply = false;  // This conn issued `drain`.
    int64_t last_activity_ms = 0;    // Last byte received.
    int64_t line_start_ms = -1;      // Partial line pending since; -1 none.
    int64_t write_start_ms = -1;     // Output pending since; -1 none.
  };

  void AcceptReady(int64_t now);
  void ReadInput(Conn& conn, int64_t now);
  void ProcessBuffer(Conn& conn, int64_t now);
  void HandleLine(Conn& conn, const std::string& line);
  void FlushOutput(Conn& conn, int64_t now);
  void Append(Conn& conn, std::string_view reply, int64_t now);
  void CloseConn(Conn& conn);
  void EnforceDeadlines(int64_t now);
  void ServeWaiters();
  int PollTimeoutMs(int64_t now) const;
  Status DrainAndFlush();
  void CloseListener();

  ServiceCore* const core_;
  const TransportConfig config_;
  SocketAddress address_;
  std::string bound_address_;
  int listen_fd_ = -1;
  std::vector<Conn> conns_;
  bool drain_requested_ = false;
};

}  // namespace mdc::service

#endif  // MDC_SERVICE_TRANSPORT_H_
