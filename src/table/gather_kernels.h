// Dispatched gather primitive of the encoded-evaluation hot loop.
//
// EncodedNodeEvaluator translates one dictionary-encoded QI column
// through a (position, level) code table with
//
//   out[row] = table[codes[row]]   for row in [0, n)
//
// — a column-contiguous u32 gather that dominates node evaluation at
// large row counts. The scalar, AVX2 (vpgatherdd, 8 lanes), and AVX-512
// (16 lanes, software prefetch, nontemporal stores in the streaming
// regime) variants below are exact: every lane performs the same
// table[codes[row]] load as the scalar loop, so results are identical by
// construction — the bit-exactness question that constrains the
// comparison kernels (FP accumulation order) does not arise for integer
// gathers.
//
// Contract: every codes[row] < table_size; out must not alias codes or
// table. The AVX-512 variant switches to nontemporal stores above
// kGatherStreamingRows rows (the output exceeds any LLC budget worth
// preserving, and the follow-up grouping pass streams it back linearly);
// it fences before returning, so callers may read `out` immediately.

#ifndef MDC_TABLE_GATHER_KERNELS_H_
#define MDC_TABLE_GATHER_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu_dispatch.h"

namespace mdc {

// Above this row count the AVX-512 gather stores nontemporally.
inline constexpr size_t kGatherStreamingRows = size_t{1} << 20;

struct GatherKernels {
  // out[row] = table[codes[row]] for row in [0, n).
  void (*gather_u32)(const uint32_t* codes, size_t n, const uint32_t* table,
                     uint32_t* out);
};

// The table for one level; levels compiled out alias scalar.
const GatherKernels& GatherKernelsFor(SimdLevel level);

// Convenience: GatherKernelsFor(ActiveSimdLevel()).
const GatherKernels& ActiveGatherKernels();

// Per-variant tables, exposed for the dispatch test.
extern const GatherKernels kGatherKernelsScalar;
#if defined(MDC_HAVE_AVX2_KERNELS)
extern const GatherKernels kGatherKernelsAvx2;
#endif
#if defined(MDC_HAVE_AVX512_KERNELS)
extern const GatherKernels kGatherKernelsAvx512;
#endif

}  // namespace mdc

#endif  // MDC_TABLE_GATHER_KERNELS_H_
