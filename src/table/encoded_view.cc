#include "table/encoded_view.h"

#include <algorithm>

namespace mdc {

StatusOr<EncodedView> EncodedView::Build(const Dataset& dataset,
                                         const std::vector<size_t>& columns) {
  EncodedView view;
  view.row_count_ = dataset.row_count();
  view.columns_ = columns;
  view.distinct_.resize(columns.size());
  view.codes_.resize(columns.size());
  for (size_t pos = 0; pos < columns.size(); ++pos) {
    size_t column = columns[pos];
    if (column >= dataset.column_count()) {
      return Status::OutOfRange("encoded view column out of range: " +
                                std::to_string(column));
    }
    std::vector<Value>& distinct = view.distinct_[pos];
    distinct = dataset.DistinctValues(column);
    AlignedVector<uint32_t>& codes = view.codes_[pos];
    codes.resize(dataset.row_count());
    for (size_t row = 0; row < dataset.row_count(); ++row) {
      auto it = std::lower_bound(distinct.begin(), distinct.end(),
                                 dataset.cell(row, column));
      codes[row] = static_cast<uint32_t>(it - distinct.begin());
    }
  }
  return view;
}

const std::vector<Value>& EncodedView::distinct_values(size_t pos) const {
  MDC_CHECK_LT(pos, distinct_.size());
  return distinct_[pos];
}

const AlignedVector<uint32_t>& EncodedView::codes(size_t pos) const {
  MDC_CHECK_LT(pos, codes_.size());
  return codes_[pos];
}

uint64_t EncodedView::CodeBytes() const {
  uint64_t bytes = 0;
  for (const AlignedVector<uint32_t>& codes : codes_) {
    bytes += codes.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace mdc
