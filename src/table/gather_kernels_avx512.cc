// AVX-512 (16 × u32) gather variant with software prefetch and, in the
// streaming regime, nontemporal stores. Compiled with -mavx512f
// -mavx512dq -mavx512vl -mavx512bw for this file only.

#include <immintrin.h>

#include "table/gather_kernels.h"

namespace mdc {
namespace {

// Distance (in rows) to prefetch the index stream ahead of the gather.
// 512 rows = 2 KiB of codes, far enough to cover DRAM latency at the
// N=1e6 streaming rate without thrashing L1.
constexpr size_t kPrefetchRows = 512;

void GatherU32Avx512(const uint32_t* codes, size_t n, const uint32_t* table,
                     uint32_t* out) {
  const int* table_i = reinterpret_cast<const int*>(table);
  size_t row = 0;
  if (n >= kGatherStreamingRows) {
    // Head: element stores until `out` reaches a cache-line boundary, so
    // the streaming loop below issues only aligned full-line stores.
    while (row < n && (reinterpret_cast<uintptr_t>(out + row) & 63u) != 0) {
      out[row] = table[codes[row]];
      ++row;
    }
    for (; row + 16 <= n; row += 16) {
      if (row + kPrefetchRows < n) {
        _mm_prefetch(reinterpret_cast<const char*>(codes + row + kPrefetchRows),
                     _MM_HINT_T0);
      }
      __m512i idx =
          _mm512_loadu_si512(reinterpret_cast<const void*>(codes + row));
      __m512i values = _mm512_i32gather_epi32(idx, table_i, sizeof(uint32_t));
      // The output is write-once and re-read linearly by the grouping
      // pass; at this size it cannot stay cached anyway, so bypass the
      // hierarchy instead of evicting 4·n bytes of useful lines.
      _mm512_stream_si512(reinterpret_cast<__m512i*>(out + row), values);
    }
    _mm_sfence();  // Order the nontemporal stores before the caller reads.
  } else {
    for (; row + 16 <= n; row += 16) {
      __m512i idx =
          _mm512_loadu_si512(reinterpret_cast<const void*>(codes + row));
      __m512i values = _mm512_i32gather_epi32(idx, table_i, sizeof(uint32_t));
      _mm512_storeu_si512(reinterpret_cast<void*>(out + row), values);
    }
  }
  for (; row < n; ++row) out[row] = table[codes[row]];
}

}  // namespace

const GatherKernels kGatherKernelsAvx512 = {GatherU32Avx512};

}  // namespace mdc
