// Relational schema with privacy roles.
//
// Each attribute carries, besides its name and type, its disclosure-control
// role: quasi-identifier attributes participate in generalization and
// equivalence-class formation, sensitive attributes drive diversity/
// closeness models, identifiers must be dropped before release, and
// insensitive attributes pass through untouched.

#ifndef MDC_TABLE_SCHEMA_H_
#define MDC_TABLE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/value.h"

namespace mdc {

enum class AttributeRole {
  kIdentifier,       // Direct identifier (name, SSN); removed on release.
  kQuasiIdentifier,  // Linkable in combination; subject to generalization.
  kSensitive,        // The value whose disclosure we protect.
  kInsensitive,      // Neither linkable nor sensitive.
};

const char* AttributeRoleName(AttributeRole role);

struct AttributeDef {
  std::string name;
  AttributeType type = AttributeType::kString;
  AttributeRole role = AttributeRole::kInsensitive;
};

class Schema {
 public:
  Schema() = default;

  // Fails on duplicate or empty attribute names.
  static StatusOr<Schema> Create(std::vector<AttributeDef> attributes);

  size_t attribute_count() const { return attributes_.size(); }
  const AttributeDef& attribute(size_t index) const;
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  // Index of the attribute named `name`, or kNotFound.
  StatusOr<size_t> IndexOf(const std::string& name) const;

  // Indices of all attributes with the given role, in schema order.
  std::vector<size_t> IndicesWithRole(AttributeRole role) const;
  std::vector<size_t> QuasiIdentifierIndices() const {
    return IndicesWithRole(AttributeRole::kQuasiIdentifier);
  }
  std::vector<size_t> SensitiveIndices() const {
    return IndicesWithRole(AttributeRole::kSensitive);
  }

 private:
  std::vector<AttributeDef> attributes_;
};

// Parses the CLI/service inline schema spelling "name:type:role,..." with
// type in {int,real,string} and role in {qi,sensitive,insensitive,id}.
// Shared by the CLI front-ends and the service's dataset cache so a cached
// load and a direct load reject malformed specs with identical Statuses.
StatusOr<Schema> ParseSchemaSpec(const std::string& spec);

}  // namespace mdc

#endif  // MDC_TABLE_SCHEMA_H_
