#include "table/value.h"

#include <functional>

#include "common/strings.h"

namespace mdc {

const char* AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kInt:
      return "int";
    case AttributeType::kReal:
      return "real";
    case AttributeType::kString:
      return "string";
  }
  return "unknown";
}

int64_t Value::AsInt() const {
  MDC_CHECK_MSG(is_int(), "Value::AsInt on non-int value");
  return std::get<int64_t>(rep_);
}

double Value::AsReal() const {
  MDC_CHECK_MSG(is_real(), "Value::AsReal on non-real value");
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  MDC_CHECK_MSG(is_string(), "Value::AsString on non-string value");
  return std::get<std::string>(rep_);
}

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(rep_));
  MDC_CHECK_MSG(is_real(), "Value::AsNumber on string value");
  return std::get<double>(rep_);
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(std::get<int64_t>(rep_));
  if (is_real()) return FormatCompact(std::get<double>(rep_));
  return std::get<std::string>(rep_);
}

StatusOr<Value> Value::Parse(std::string_view text, AttributeType type) {
  switch (type) {
    case AttributeType::kInt: {
      std::optional<int64_t> v = ParseInt64(text);
      if (!v.has_value()) {
        return Status::InvalidArgument("cannot parse int: '" +
                                       std::string(text) + "'");
      }
      return Value(*v);
    }
    case AttributeType::kReal: {
      std::optional<double> v = ParseDouble(text);
      if (!v.has_value()) {
        return Status::InvalidArgument("cannot parse real: '" +
                                       std::string(text) + "'");
      }
      return Value(*v);
    }
    case AttributeType::kString:
      return Value(std::string(text));
  }
  return Status::Internal("unknown attribute type");
}

size_t Value::Hash() const {
  size_t type_tag = rep_.index();
  size_t payload = 0;
  if (is_int()) {
    payload = std::hash<int64_t>()(std::get<int64_t>(rep_));
  } else if (is_real()) {
    payload = std::hash<double>()(std::get<double>(rep_));
  } else {
    payload = std::hash<std::string>()(std::get<std::string>(rep_));
  }
  // Boost-style mix so (tag, payload) pairs spread well.
  return payload ^ (type_tag + 0x9E3779B97F4A7C15ULL + (payload << 6) +
                    (payload >> 2));
}

}  // namespace mdc
