#include "table/schema.h"

#include <unordered_set>

#include "common/strings.h"

namespace mdc {

const char* AttributeRoleName(AttributeRole role) {
  switch (role) {
    case AttributeRole::kIdentifier:
      return "identifier";
    case AttributeRole::kQuasiIdentifier:
      return "quasi-identifier";
    case AttributeRole::kSensitive:
      return "sensitive";
    case AttributeRole::kInsensitive:
      return "insensitive";
  }
  return "unknown";
}

StatusOr<Schema> Schema::Create(std::vector<AttributeDef> attributes) {
  std::unordered_set<std::string> seen;
  for (const AttributeDef& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + attr.name);
    }
  }
  Schema schema;
  schema.attributes_ = std::move(attributes);
  return schema;
}

const AttributeDef& Schema::attribute(size_t index) const {
  MDC_CHECK_LT(index, attributes_.size());
  return attributes_[index];
}

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named: " + name);
}

std::vector<size_t> Schema::IndicesWithRole(AttributeRole role) const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].role == role) indices.push_back(i);
  }
  return indices;
}

StatusOr<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<AttributeDef> attributes;
  for (const std::string& column : StrSplit(spec, ',')) {
    std::vector<std::string> parts = StrSplit(column, ':');
    if (parts.size() != 3) {
      return Status::InvalidArgument("schema column must be name:type:role");
    }
    AttributeDef attr;
    attr.name = parts[0];
    if (parts[1] == "int") {
      attr.type = AttributeType::kInt;
    } else if (parts[1] == "real") {
      attr.type = AttributeType::kReal;
    } else if (parts[1] == "string") {
      attr.type = AttributeType::kString;
    } else {
      return Status::InvalidArgument("unknown type '" + parts[1] + "'");
    }
    if (parts[2] == "qi") {
      attr.role = AttributeRole::kQuasiIdentifier;
    } else if (parts[2] == "sensitive") {
      attr.role = AttributeRole::kSensitive;
    } else if (parts[2] == "insensitive") {
      attr.role = AttributeRole::kInsensitive;
    } else if (parts[2] == "id") {
      attr.role = AttributeRole::kIdentifier;
    } else {
      return Status::InvalidArgument("unknown role '" + parts[2] + "'");
    }
    attributes.push_back(std::move(attr));
  }
  return Schema::Create(std::move(attributes));
}

}  // namespace mdc
