// Portable gather variant and the per-level table resolver.

#include "table/gather_kernels.h"

namespace mdc {
namespace {

void GatherU32Scalar(const uint32_t* codes, size_t n, const uint32_t* table,
                     uint32_t* out) {
  for (size_t row = 0; row < n; ++row) out[row] = table[codes[row]];
}

}  // namespace

const GatherKernels kGatherKernelsScalar = {GatherU32Scalar};

const GatherKernels& GatherKernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return kGatherKernelsScalar;
    case SimdLevel::kAvx2:
#if defined(MDC_HAVE_AVX2_KERNELS)
      return kGatherKernelsAvx2;
#else
      return kGatherKernelsScalar;
#endif
    case SimdLevel::kAvx512:
#if defined(MDC_HAVE_AVX512_KERNELS)
      return kGatherKernelsAvx512;
#elif defined(MDC_HAVE_AVX2_KERNELS)
      return kGatherKernelsAvx2;
#else
      return kGatherKernelsScalar;
#endif
  }
  return kGatherKernelsScalar;
}

const GatherKernels& ActiveGatherKernels() {
  return GatherKernelsFor(ActiveSimdLevel());
}

}  // namespace mdc
