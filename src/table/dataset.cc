#include "table/dataset.h"

#include <algorithm>
#include <limits>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/text_table.h"

namespace mdc {

Status Dataset::AppendRow(Row row) {
  MDC_FAILPOINT("dataset.append_row");
  if (row.size() != schema_.attribute_count()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.attribute_count()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const AttributeDef& attr = schema_.attribute(i);
    bool type_ok = (attr.type == AttributeType::kInt && row[i].is_int()) ||
                   (attr.type == AttributeType::kReal && row[i].is_real()) ||
                   (attr.type == AttributeType::kString && row[i].is_string());
    if (!type_ok) {
      return Status::InvalidArgument("value type mismatch in column '" +
                                     attr.name + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

const Dataset::Row& Dataset::row(size_t index) const {
  MDC_CHECK_LT(index, rows_.size());
  return rows_[index];
}

const Value& Dataset::cell(size_t row, size_t column) const {
  MDC_CHECK_LT(row, rows_.size());
  MDC_CHECK_LT(column, schema_.attribute_count());
  return rows_[row][column];
}

void Dataset::set_cell(size_t row, size_t column, Value value) {
  MDC_CHECK_LT(row, rows_.size());
  MDC_CHECK_LT(column, schema_.attribute_count());
  rows_[row][column] = std::move(value);
}

std::vector<Value> Dataset::Column(size_t column) const {
  MDC_CHECK_LT(column, schema_.attribute_count());
  std::vector<Value> values;
  values.reserve(rows_.size());
  for (const Row& r : rows_) values.push_back(r[column]);
  return values;
}

std::vector<Value> Dataset::DistinctValues(size_t column) const {
  std::vector<Value> values = Column(column);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

StatusOr<std::pair<double, double>> Dataset::NumericRange(
    size_t column) const {
  MDC_CHECK_LT(column, schema_.attribute_count());
  if (rows_.empty()) {
    return Status::FailedPrecondition("NumericRange on empty dataset");
  }
  if (schema_.attribute(column).type == AttributeType::kString) {
    return Status::InvalidArgument("NumericRange on string column '" +
                                   schema_.attribute(column).name + "'");
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Row& r : rows_) {
    double v = r[column].AsNumber();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return std::make_pair(lo, hi);
}

StatusOr<Dataset> Dataset::FromCsv(const Schema& schema,
                                   std::string_view text) {
  MDC_FAILPOINT("dataset.from_csv");
  MDC_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  const std::vector<std::string>& header = rows[0];
  if (header.size() != schema.attribute_count()) {
    return Status::InvalidArgument("CSV header arity does not match schema");
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] != schema.attribute(i).name) {
      return Status::InvalidArgument("CSV header column " +
                                     std::to_string(i) + " is '" + header[i] +
                                     "', expected '" +
                                     schema.attribute(i).name + "'");
    }
  }
  Dataset dataset(schema);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != schema.attribute_count()) {
      return Status::InvalidArgument("CSV row " + std::to_string(r) +
                                     " has wrong arity");
    }
    Row row;
    row.reserve(schema.attribute_count());
    for (size_t c = 0; c < rows[r].size(); ++c) {
      MDC_ASSIGN_OR_RETURN(Value v,
                           Value::Parse(rows[r][c], schema.attribute(c).type));
      row.push_back(std::move(v));
    }
    MDC_RETURN_IF_ERROR(dataset.AppendRow(std::move(row)));
  }
  return dataset;
}

std::string Dataset::ToCsv() const {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  for (const AttributeDef& attr : schema_.attributes()) {
    header.push_back(attr.name);
  }
  rows.push_back(std::move(header));
  for (const Row& r : rows_) {
    std::vector<std::string> out;
    out.reserve(r.size());
    for (const Value& v : r) out.push_back(v.ToString());
    rows.push_back(std::move(out));
  }
  return WriteCsv(rows);
}

std::string Dataset::ToText() const {
  TextTable table;
  std::vector<std::string> header = {"#"};
  for (const AttributeDef& attr : schema_.attributes()) {
    header.push_back(attr.name);
  }
  table.SetHeader(std::move(header));
  for (size_t i = 0; i < rows_.size(); ++i) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const Value& v : rows_[i]) row.push_back(v.ToString());
    table.AddRow(std::move(row));
  }
  return table.Render();
}

}  // namespace mdc
