// In-memory row-store microdata set.
//
// A Dataset is an immutable-schema, mutable-rows table. Both original
// microdata and anonymized releases are Datasets; anonymized cells hold
// generalized labels (string Values) in the quasi-identifier columns while
// sensitive columns keep their original values (the paper's Tables 2–3 show
// exactly this shape).

#ifndef MDC_TABLE_DATASET_H_
#define MDC_TABLE_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/schema.h"
#include "table/value.h"

namespace mdc {

class Dataset {
 public:
  using Row = std::vector<Value>;

  // An empty dataset with an empty schema; useful as a placeholder in
  // result structs that are filled in later.
  Dataset() = default;

  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t row_count() const { return rows_.size(); }
  size_t column_count() const { return schema_.attribute_count(); }

  // Appends a row; fails if arity or value types disagree with the schema.
  Status AppendRow(Row row);

  // Pre-allocates capacity for `rows` rows (callers that know the final
  // size, e.g. Generalizer::Apply, avoid repeated growth).
  void ReserveRows(size_t rows) { rows_.reserve(rows); }

  const Row& row(size_t index) const;
  const Value& cell(size_t row, size_t column) const;
  void set_cell(size_t row, size_t column, Value value);

  // All values of one column, in row order.
  std::vector<Value> Column(size_t column) const;

  // Distinct values of one column, sorted.
  std::vector<Value> DistinctValues(size_t column) const;

  // [min, max] of a numeric column; fails on empty data or string column.
  StatusOr<std::pair<double, double>> NumericRange(size_t column) const;

  // Parses CSV `text` whose header must match the schema attribute names
  // in order; cells are parsed per the schema types.
  static StatusOr<Dataset> FromCsv(const Schema& schema,
                                   std::string_view text);

  // Serializes with a header row.
  std::string ToCsv() const;

  // Aligned console rendering (used by examples and repro binaries).
  std::string ToText() const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace mdc

#endif  // MDC_TABLE_DATASET_H_
