// AVX2 (8 × u32) gather variant. Compiled with -mavx2 for this file
// only; see gather_kernels.h for the contract.

#include <immintrin.h>

#include "table/gather_kernels.h"

namespace mdc {
namespace {

void GatherU32Avx2(const uint32_t* codes, size_t n, const uint32_t* table,
                   uint32_t* out) {
  size_t row = 0;
  for (; row + 8 <= n; row += 8) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + row));
    __m256i values = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), idx, sizeof(uint32_t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + row), values);
  }
  for (; row < n; ++row) out[row] = table[codes[row]];
}

}  // namespace

const GatherKernels kGatherKernelsAvx2 = {GatherU32Avx2};

}  // namespace mdc
