// Dictionary-encoded column view of a dataset.
//
// An EncodedView replaces the Values of selected columns with dense
// uint32_t codes: codes(pos)[row] indexes distinct_values(pos), which holds
// the column's distinct Values in sorted order. Built once per dataset, the
// view lets lattice-node evaluation run entirely on integers — a
// generalization level becomes an O(distinct) code-translation table
// (hierarchy/level_codec.h) and applying it is an O(rows) gather, with zero
// per-row string work. The hot loops of the five lattice searches all run
// on this representation.

#ifndef MDC_TABLE_ENCODED_VIEW_H_
#define MDC_TABLE_ENCODED_VIEW_H_

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"
#include "table/dataset.h"

namespace mdc {

class EncodedView {
 public:
  // Encodes `columns` of `dataset`. Positions below refer to indices into
  // `columns` (the same convention HierarchySet uses).
  static StatusOr<EncodedView> Build(const Dataset& dataset,
                                     const std::vector<size_t>& columns);

  size_t row_count() const { return row_count_; }
  size_t position_count() const { return columns_.size(); }
  const std::vector<size_t>& columns() const { return columns_; }

  // Distinct Values of position `pos`, sorted by Value order; the codes of
  // that position index this vector.
  const std::vector<Value>& distinct_values(size_t pos) const;

  // Row-aligned codes of position `pos`. Cache-line-aligned storage: the
  // SIMD gather kernels stream these columns (table/gather_kernels.h).
  const AlignedVector<uint32_t>& codes(size_t pos) const;

  // Bytes held by the code arrays (for RunContext memory accounting).
  uint64_t CodeBytes() const;

 private:
  size_t row_count_ = 0;
  std::vector<size_t> columns_;
  std::vector<std::vector<Value>> distinct_;
  std::vector<AlignedVector<uint32_t>> codes_;
};

}  // namespace mdc

#endif  // MDC_TABLE_ENCODED_VIEW_H_
