// Typed cell values for microdata tables.
//
// A Value holds one of: 64-bit integer, double, or string. Original
// (pre-anonymization) tables hold typed values; anonymized tables hold
// generalized *labels* (strings such as "1305*" or "(25,35]") produced by
// the hierarchy layer, so Value also serves as the cell type there.

#ifndef MDC_TABLE_VALUE_H_
#define MDC_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.h"

namespace mdc {

enum class AttributeType {
  kInt,     // 64-bit signed integer (age, zip-as-number, counts).
  kReal,    // double (continuous measurements).
  kString,  // categorical / free-form text.
};

const char* AttributeTypeName(AttributeType type);

class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_real() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  // Typed accessors; MDC_CHECK on type mismatch.
  int64_t AsInt() const;
  double AsReal() const;
  const std::string& AsString() const;

  // Numeric view: the int or real payload as double. MDC_CHECK on strings.
  double AsNumber() const;

  // Human-readable rendering (ints without decimals, reals compact).
  std::string ToString() const;

  // Parses `text` as a value of `type`.
  static StatusOr<Value> Parse(std::string_view text, AttributeType type);

  // Equality is type-sensitive: Value(1) != Value("1").
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  // Total order used for sorting/grouping: ints < reals < strings by type,
  // then by payload. (Cross-type order is arbitrary but stable.)
  friend bool operator<(const Value& a, const Value& b) {
    return a.rep_ < b.rep_;
  }

  // Hash for unordered containers.
  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace mdc

#endif  // MDC_TABLE_VALUE_H_
