// Versioned binary snapshots for crash-safe checkpoint/resume.
//
// A snapshot is a self-describing byte string: a magic header, the
// container format version, a payload kind + per-kind version, a
// length-prefixed payload, and a CRC32 trailer over everything before it.
// SnapshotWriter builds one; SnapshotReader::Open validates the frame
// strictly (magic, versions, kind, length, CRC) and rejects truncated,
// corrupt, or version-mismatched input with a clean Status — untrusted
// bytes can never crash or over-allocate, because every length prefix is
// checked against the bytes actually present before anything is resized.
//
// All integers are little-endian fixed-width; doubles are bit-cast to
// uint64_t, so round-trips are bit-exact and platform-stable.

#ifndef MDC_COMMON_SNAPSHOT_H_
#define MDC_COMMON_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mdc {

// "MDCS" — identifies any snapshot produced by this library.
inline constexpr uint32_t kSnapshotMagic = 0x4D444353;
// Version of the container frame itself (header + trailer layout).
inline constexpr uint32_t kSnapshotFormatVersion = 1;

// What the payload holds. A reader opened for one kind rejects all others,
// so a batch checkpoint can never be fed to a lattice search and vice
// versa.
enum class SnapshotKind : uint32_t {
  kIncognito = 1,
  kSamarati = 2,
  kOptimalLattice = 3,
  kParetoLattice = 4,
  kStochastic = 5,
  kBatch = 6,
  kServiceJob = 7,      // One admitted job's durable journal record.
  kServiceOutcome = 8,  // One job's terminal outcome record.
  kPerturb = 9,         // Perturbation column-sweep position.
};

// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
uint32_t Crc32(std::string_view bytes);

// Accumulates payload fields, then frames them in Finish().
class SnapshotWriter {
 public:
  SnapshotWriter(SnapshotKind kind, uint32_t payload_version);

  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteBool(bool value);
  void WriteDouble(double value);                 // Bit-exact.
  void WriteString(std::string_view value);       // u64 length + bytes.
  void WriteU64Vec(const std::vector<uint64_t>& values);
  void WriteI32Vec(const std::vector<int>& values);

  // magic | format | kind | payload_version | payload length | payload | crc.
  std::string Finish() const;

 private:
  SnapshotKind kind_;
  uint32_t payload_version_;
  std::string payload_;
};

// Strict sequential reader over a framed snapshot. Every accessor returns
// a clean Status on exhausted or malformed input.
class SnapshotReader {
 public:
  // Validates the frame and positions the reader at the payload start.
  // Rejects: short input, bad magic, container-format or payload-version
  // mismatch, wrong kind, length prefix disagreeing with the actual size,
  // and CRC mismatch.
  static StatusOr<SnapshotReader> Open(std::string_view bytes,
                                       SnapshotKind kind,
                                       uint32_t payload_version);

  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<int64_t> ReadI64();
  StatusOr<bool> ReadBool();
  StatusOr<double> ReadDouble();
  StatusOr<std::string> ReadString();
  StatusOr<std::vector<uint64_t>> ReadU64Vec();
  StatusOr<std::vector<int>> ReadI32Vec();

  size_t remaining() const { return payload_.size() - pos_; }

  // Error unless the whole payload has been consumed — catches payloads
  // from a newer writer that appended fields without bumping the version.
  Status ExpectEnd() const;

 private:
  explicit SnapshotReader(std::string payload) : payload_(std::move(payload)) {}

  Status Need(size_t bytes) const;

  std::string payload_;  // Owned copy: snapshots are small relative to runs.
  size_t pos_ = 0;
};

}  // namespace mdc

#endif  // MDC_COMMON_SNAPSHOT_H_
