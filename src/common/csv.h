// Minimal RFC-4180-style CSV reading and writing.
//
// Supports quoted fields containing commas, quotes (doubled), and newlines.
// Used by table I/O (Dataset::FromCsv / Dataset::ToCsv) and by the bench
// harness to dump series for plotting.

#ifndef MDC_COMMON_CSV_H_
#define MDC_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mdc {

// Parses a whole CSV document into rows of fields. Handles \n and \r\n line
// endings. A trailing newline does not produce an empty final row.
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text);

// Quotes `field` if it contains a comma, quote, or newline.
std::string CsvEscape(std::string_view field);

// Serializes rows to CSV text with \n line endings.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

// File helpers.
StatusOr<std::string> ReadFileToString(const std::string& path);
Status WriteStringToFile(const std::string& path, std::string_view contents);

}  // namespace mdc

#endif  // MDC_COMMON_CSV_H_
