#include "common/rng.h"

#include <cmath>
#include <cstring>

namespace mdc {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256** step.
  uint64_t result = RotL(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  MDC_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  MDC_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  MDC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MDC_CHECK_GE(w, 0.0);
    total += w;
  }
  MDC_CHECK_GT(total, 0.0);
  double draw = NextDouble() * total;
  double accum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    accum += weights[i];
    if (draw < accum) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::array<uint64_t, 6> Rng::SaveState() const {
  std::array<uint64_t, 6> state = {state_[0], state_[1], state_[2],
                                   state_[3], have_gaussian_ ? 1u : 0u, 0};
  std::memcpy(&state[5], &spare_gaussian_, sizeof(state[5]));
  return state;
}

void Rng::RestoreState(const std::array<uint64_t, 6>& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state[static_cast<size_t>(i)];
  have_gaussian_ = state[4] != 0;
  std::memcpy(&spare_gaussian_, &state[5], sizeof(spare_gaussian_));
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  have_gaussian_ = true;
  return radius * std::cos(angle);
}

}  // namespace mdc
