// Minimal fork-join thread pool for deterministic fan-out parallelism.
//
// The lattice searches evaluate batches of independent nodes; ParallelFor
// runs one closure per index across the pool's workers plus the calling
// thread and returns when every index has completed. Scheduling order is
// nondeterministic, so callers that need deterministic results must make
// the closure for index i write only to slot i and do any order-sensitive
// reduction themselves after ParallelFor returns (see
// anonymize/encoded_eval.h for the batch protocol the searches use).

#ifndef MDC_COMMON_THREAD_POOL_H_
#define MDC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mdc {

class ThreadPool {
 public:
  // Spawns `threads - 1` workers; the caller participates in every
  // ParallelFor, so the pool executes on `threads` threads total.
  // threads <= 1 spawns nothing and ParallelFor degenerates to a serial
  // loop on the calling thread.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Threads that execute a ParallelFor (workers + the caller).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(0) .. fn(count - 1), each exactly once, and blocks until all
  // have returned. `fn` must be thread-safe across indices and must not
  // throw. Reentrant calls (fn itself calling ParallelFor) are not
  // supported.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  // threads <= 0 means "use the hardware": hardware_concurrency with a
  // floor of 1. Positive values pass through.
  static int ResolveThreadCount(int threads);

 private:
  // One fan-out. Workers hold the job via shared_ptr so a worker that wakes
  // late touches its own (already exhausted) claim counter rather than a
  // reused slot — `next` claims indices, `done` counts completions.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t done = 0;  // Guarded by mu.
  };

  static void RunJob(Job& job);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::shared_ptr<Job> job_;  // Guarded by mu_.
  uint64_t generation_ = 0;   // Guarded by mu_; bumped per ParallelFor.
  bool shutdown_ = false;     // Guarded by mu_.
  std::vector<std::thread> workers_;
};

}  // namespace mdc

#endif  // MDC_COMMON_THREAD_POOL_H_
