#include "common/cpu_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"

namespace mdc {
namespace {

// The cached level, encoded as SimdLevel+1 so 0 means "not resolved
// yet". Relaxed everywhere: the value is write-once (plus test-scoped
// swaps, which are documented as not thread-safe).
std::atomic<int> g_active_level{0};

SimdLevel ResolveFromEnvironment() {
  std::optional<SimdLevel> requested;
  if (const char* env = std::getenv("MDC_SIMD_LEVEL")) {
    StatusOr<SimdLevel> parsed = ParseSimdLevel(env);
    if (parsed.ok()) {
      requested = *parsed;
    } else {
      std::fprintf(stderr,
                   "mdc: ignoring invalid MDC_SIMD_LEVEL='%s' "
                   "(expected scalar|avx2|avx512)\n",
                   env);
    }
  }
  return ResolveSimdLevel(requested, DetectSimdLevel());
}

void PublishLevelMetric(SimdLevel level) {
  metrics::GetGauge("mdc.cpu.simd_level").Set(static_cast<int64_t>(level));
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

StatusOr<SimdLevel> ParseSimdLevel(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return Status::InvalidArgument("unknown SIMD level '" + name +
                                 "' (expected scalar|avx2|avx512)");
}

SimdLevel DetectSimdLevel() {
#if defined(MDC_HAVE_AVX512_KERNELS) || defined(MDC_HAVE_AVX2_KERNELS)
  // __builtin_cpu_supports consults cpuid through the compiler's
  // feature-probe machinery; glibc initializes it before main.
#if defined(MDC_HAVE_AVX512_KERNELS)
  // The AVX-512 kernels use F (512-bit lanes, masks, compress), DQ
  // (double-precision mask compares), VL (256-bit masked tails), and BW;
  // require the full set so one probe covers every instruction emitted.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512bw")) {
    return SimdLevel::kAvx512;
  }
#endif
#if defined(MDC_HAVE_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
#endif
  return SimdLevel::kScalar;
}

SimdLevel ResolveSimdLevel(const std::optional<SimdLevel>& requested,
                           SimdLevel detected) {
  if (!requested.has_value()) return detected;
  return *requested < detected ? *requested : detected;
}

SimdLevel ActiveSimdLevel() {
  int cached = g_active_level.load(std::memory_order_relaxed);
  if (cached != 0) return static_cast<SimdLevel>(cached - 1);
  SimdLevel resolved = ResolveFromEnvironment();
  // First resolver wins; concurrent callers compute the same value (the
  // environment does not change), so the race is benign.
  g_active_level.store(static_cast<int>(resolved) + 1,
                       std::memory_order_relaxed);
  PublishLevelMetric(resolved);
  return resolved;
}

ScopedSimdLevelForTest::ScopedSimdLevelForTest(SimdLevel level)
    : previous_(ActiveSimdLevel()) {
  SimdLevel clamped = ResolveSimdLevel(level, DetectSimdLevel());
  g_active_level.store(static_cast<int>(clamped) + 1,
                       std::memory_order_relaxed);
  PublishLevelMetric(clamped);
}

ScopedSimdLevelForTest::~ScopedSimdLevelForTest() {
  g_active_level.store(static_cast<int>(previous_) + 1,
                       std::memory_order_relaxed);
  PublishLevelMetric(previous_);
}

}  // namespace mdc
