// Deterministic fault injection for error-path testing.
//
// A failpoint is a named site in library code where a test can force a
// failure: `MDC_FAILPOINT("csv.parse")` returns an armed Status to the
// enclosing function (which must return Status or StatusOr<T>), exercising
// the exact error branch a real I/O or data fault would take. Sites are
// declared centrally in failpoint.cc (kSites) so tests can enumerate them
// and prove every registered site both triggers and propagates cleanly.
//
// Tests arm a site with failpoint::ScopedFailpoint:
//
//   failpoint::ScopedFailpoint fp("csv.parse",
//                                 Status::Internal("injected"));
//   EXPECT_FALSE(ParseCsv("a,b").ok());
//
// Arming supports skip/count so inner-loop sites can fail on the Nth pass,
// and period so a site fires on every Nth pass (recurring transient faults
// for torture runs). The hooks compile to nothing when MDC_FAILPOINTS is
// OFF (release builds); the registry functions remain linkable and report
// Enabled() == false so tests can skip themselves.
//
// For out-of-process fault injection (the CLI, the kill-torture harness),
// ArmFromEnvSpec parses the MDC_FAILPOINTS environment variable:
//
//   MDC_FAILPOINTS="io.fsync=internal:period=7;io.rename=kill:skip=3"
//
// Each clause is site=action with optional :skip=N / :count=N / :period=N
// modifiers. Action `internal` injects Status::Internal (a transient code
// the retry layers handle); `notfound` injects Status::NotFound (a
// deterministic code); `kill` raises SIGKILL at the site, which is how the
// torture harness lands a crash deterministically inside a durable-write
// window.

#ifndef MDC_COMMON_FAILPOINT_H_
#define MDC_COMMON_FAILPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mdc::failpoint {

// True when the library was compiled with MDC_FAILPOINTS=ON.
bool Enabled();

// All declared sites, in declaration order. Unknown names cannot be armed.
std::vector<std::string> AllSites();

// Arms `site` to return `status` from its MDC_FAILPOINT. The first `skip`
// passes succeed. With `period` == 0 the next `count` passes fail
// consecutively (-1 = until disarmed); with `period` == N > 0 every Nth
// post-skip pass fires (pass N, 2N, 3N, ...), still bounded by `count`
// total fires. Returns false (and arms nothing) if `site` is not a
// declared site.
bool Arm(const std::string& site, Status status, int skip = 0,
         int count = -1, int period = 0);

// Arms `site` to raise SIGKILL when due (same skip/count/period schedule).
// The process dies exactly at the site — no destructors, no flushes —
// which is what the kill-torture harness uses to crash inside io.*
// windows. Returns false for undeclared sites.
bool ArmKill(const std::string& site, int skip = 0, int count = -1,
             int period = 0);

// Parses a MDC_FAILPOINTS-style spec ("site=action[:skip=N][:count=N]
// [:period=N];...") and arms every clause. Actions: internal, notfound,
// kill. Empty spec is OK (arms nothing). Any malformed clause or unknown
// site/action is an error and nothing new stays armed.
Status ArmFromEnvSpec(const std::string& spec);

void Disarm(const std::string& site);
void DisarmAll();

// Number of times `site` fired since it was last armed.
int HitCount(const std::string& site);

// Called by the MDC_FAILPOINT macro; OK unless the site is armed and due.
Status Trigger(const char* site);

// RAII arm/disarm for tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Status status, int skip = 0,
                  int count = -1, int period = 0)
      : site_(std::move(site)) {
    armed_ = Arm(site_, std::move(status), skip, count, period);
  }
  ~ScopedFailpoint() { Disarm(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  bool armed() const { return armed_; }

 private:
  std::string site_;
  bool armed_ = false;
};

}  // namespace mdc::failpoint

#if defined(MDC_FAILPOINTS_ENABLED)
// Returns the armed Status out of the enclosing function (Status or
// StatusOr<T>). Near-zero cost while no site is armed (one relaxed atomic
// load).
#define MDC_FAILPOINT(site)                                          \
  do {                                                               \
    ::mdc::Status _mdc_fp = ::mdc::failpoint::Trigger(site);         \
    if (!_mdc_fp.ok()) return _mdc_fp;                               \
  } while (false)
// Evaluates to the armed Status (OK when disarmed) without returning, for
// sites that must run cleanup (remove a temp file, close a handle) before
// propagating the injected fault.
#define MDC_FAILPOINT_STATUS(site) ::mdc::failpoint::Trigger(site)
#else
#define MDC_FAILPOINT(site) \
  do {                      \
  } while (false)
#define MDC_FAILPOINT_STATUS(site) ::mdc::Status::Ok()
#endif

#endif  // MDC_COMMON_FAILPOINT_H_
