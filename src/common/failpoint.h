// Deterministic fault injection for error-path testing.
//
// A failpoint is a named site in library code where a test can force a
// failure: `MDC_FAILPOINT("csv.parse")` returns an armed Status to the
// enclosing function (which must return Status or StatusOr<T>), exercising
// the exact error branch a real I/O or data fault would take. Sites are
// declared centrally in failpoint.cc (kSites) so tests can enumerate them
// and prove every registered site both triggers and propagates cleanly.
//
// Tests arm a site with failpoint::ScopedFailpoint:
//
//   failpoint::ScopedFailpoint fp("csv.parse",
//                                 Status::Internal("injected"));
//   EXPECT_FALSE(ParseCsv("a,b").ok());
//
// Arming supports skip/count so inner-loop sites can fail on the Nth pass.
// The hooks compile to nothing when MDC_FAILPOINTS is OFF (release
// builds); the registry functions remain linkable and report Enabled() ==
// false so tests can skip themselves.

#ifndef MDC_COMMON_FAILPOINT_H_
#define MDC_COMMON_FAILPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mdc::failpoint {

// True when the library was compiled with MDC_FAILPOINTS=ON.
bool Enabled();

// All declared sites, in declaration order. Unknown names cannot be armed.
std::vector<std::string> AllSites();

// Arms `site` to return `status` from its MDC_FAILPOINT. The first `skip`
// passes succeed; the next `count` passes fail (-1 = until disarmed).
// Returns false (and arms nothing) if `site` is not a declared site.
bool Arm(const std::string& site, Status status, int skip = 0,
         int count = -1);

void Disarm(const std::string& site);
void DisarmAll();

// Number of times `site` fired since it was last armed.
int HitCount(const std::string& site);

// Called by the MDC_FAILPOINT macro; OK unless the site is armed and due.
Status Trigger(const char* site);

// RAII arm/disarm for tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Status status, int skip = 0,
                  int count = -1)
      : site_(std::move(site)) {
    armed_ = Arm(site_, std::move(status), skip, count);
  }
  ~ScopedFailpoint() { Disarm(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  bool armed() const { return armed_; }

 private:
  std::string site_;
  bool armed_ = false;
};

}  // namespace mdc::failpoint

#if defined(MDC_FAILPOINTS_ENABLED)
// Returns the armed Status out of the enclosing function (Status or
// StatusOr<T>). Near-zero cost while no site is armed (one relaxed atomic
// load).
#define MDC_FAILPOINT(site)                                          \
  do {                                                               \
    ::mdc::Status _mdc_fp = ::mdc::failpoint::Trigger(site);         \
    if (!_mdc_fp.ok()) return _mdc_fp;                               \
  } while (false)
// Evaluates to the armed Status (OK when disarmed) without returning, for
// sites that must run cleanup (remove a temp file, close a handle) before
// propagating the injected fault.
#define MDC_FAILPOINT_STATUS(site) ::mdc::failpoint::Trigger(site)
#else
#define MDC_FAILPOINT(site) \
  do {                      \
  } while (false)
#define MDC_FAILPOINT_STATUS(site) ::mdc::Status::Ok()
#endif

#endif  // MDC_COMMON_FAILPOINT_H_
