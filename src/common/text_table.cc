#include "common/text_table.h"

#include <algorithm>

namespace mdc {
namespace {

void AppendPadded(std::string& out, const std::string& cell, size_t width,
                  bool last) {
  out += cell;
  if (!last) out.append(width - cell.size() + 2, ' ');
}

}  // namespace

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return "";

  std::vector<size_t> widths(columns, 0);
  auto account = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  std::string out;
  if (!header_.empty()) {
    for (size_t i = 0; i < columns; ++i) {
      AppendPadded(out, i < header_.size() ? header_[i] : "", widths[i],
                   i + 1 == columns);
    }
    out += '\n';
    for (size_t i = 0; i < columns; ++i) {
      AppendPadded(out, std::string(widths[i], '-'), widths[i],
                   i + 1 == columns);
    }
    out += '\n';
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < columns; ++i) {
      AppendPadded(out, i < row.size() ? row[i] : "", widths[i],
                   i + 1 == columns);
    }
    out += '\n';
  }
  return out;
}

}  // namespace mdc
