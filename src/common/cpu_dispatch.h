// Runtime CPU-feature dispatch for the SIMD kernel families.
//
// One binary carries scalar, AVX2, and AVX-512 variants of the hot
// kernels (core/compare_kernels.h, table/gather_kernels.h); this module
// decides, once per process, which variant family every dispatched call
// site uses:
//
//   level = Clamp(override from MDC_SIMD_LEVEL, DetectSimdLevel())
//
// The override can only lower the level — requesting avx512 on a machine
// without it silently clamps to what the hardware supports, so test
// matrices can set MDC_SIMD_LEVEL=avx512 unconditionally. An unparseable
// override is ignored with a one-time stderr warning rather than
// aborting: dispatch is a performance choice, never a correctness one
// (every level is proven bit-identical by the differential oracle).
//
// The resolved level is exported as the `mdc.cpu.simd_level` gauge
// (numeric value = SimdLevel enum; the JSON-friendly mapping is
// 0=scalar, 1=avx2, 2=avx512) and printed by `mdc_cli version`.
//
// Kernel families cache nothing across calls: a dispatched call site
// reads ActiveSimdLevel() (one relaxed atomic load) and indexes its
// per-level table, so tests may swap the level mid-process with
// ScopedSimdLevelForTest. That override is test-only and not
// thread-safe against concurrent kernel callers.

#ifndef MDC_COMMON_CPU_DISPATCH_H_
#define MDC_COMMON_CPU_DISPATCH_H_

#include <optional>
#include <string>

#include "common/status.h"

namespace mdc {

// Ordered: a level implies every lower one, so clamping is min().
enum class SimdLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* SimdLevelName(SimdLevel level);
StatusOr<SimdLevel> ParseSimdLevel(const std::string& name);

// What the hardware (and this build) can run: the highest level whose
// instructions both compiled in and pass the cpuid probe. Pure hardware
// question — ignores MDC_SIMD_LEVEL.
SimdLevel DetectSimdLevel();

// Pure resolution logic (unit-tested without touching process state):
// the requested override clamped to `detected`; no override = detected.
SimdLevel ResolveSimdLevel(const std::optional<SimdLevel>& requested,
                           SimdLevel detected);

// The process-wide dispatch level: resolved from MDC_SIMD_LEVEL on first
// call, then cached. Also publishes the `mdc.cpu.simd_level` gauge.
SimdLevel ActiveSimdLevel();

// Test hook: forces the active level (clamped to DetectSimdLevel(), so a
// test requesting an unsupported level runs the best available instead
// of crashing) and restores the previous level on destruction.
class ScopedSimdLevelForTest {
 public:
  explicit ScopedSimdLevelForTest(SimdLevel level);
  ~ScopedSimdLevelForTest();
  ScopedSimdLevelForTest(const ScopedSimdLevelForTest&) = delete;
  ScopedSimdLevelForTest& operator=(const ScopedSimdLevelForTest&) = delete;

 private:
  SimdLevel previous_;
};

}  // namespace mdc

#endif  // MDC_COMMON_CPU_DISPATCH_H_
