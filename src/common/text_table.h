// Fixed-width text table rendering for the repro binaries.
//
// The paper's tables and figure data are reproduced as aligned console
// tables; TextTable collects rows of strings and renders them with column
// widths derived from the content.

#ifndef MDC_COMMON_TEXT_TABLE_H_
#define MDC_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace mdc {

class TextTable {
 public:
  TextTable() = default;

  // Sets the header row. Columns are created on demand.
  void SetHeader(std::vector<std::string> header);

  // Appends a data row. Rows may have differing lengths; short rows are
  // padded with empty cells at render time.
  void AddRow(std::vector<std::string> row);

  // Renders with a header separator and two spaces between columns:
  //   col_a  col_b
  //   -----  -----
  //   1      x
  std::string Render() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mdc

#endif  // MDC_COMMON_TEXT_TABLE_H_
