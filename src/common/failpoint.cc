#include "common/failpoint.h"

#include <csignal>

#include <atomic>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/strings.h"

namespace mdc::failpoint {
namespace {

// Every failpoint site in the library. MDC_FAILPOINT calls at undeclared
// sites still compile, but tests cannot arm them, which keeps this list
// the authoritative inventory that failpoint_test.cc covers one by one.
constexpr const char* kSites[] = {
    "csv.parse",
    "csv.read_file",
    "csv.read_short",
    "csv.write_file",
    "io.tmp_write",
    "io.fsync",
    "io.rename",
    "io.probe_dir",
    "spec.parse",
    "dataset.from_csv",
    "dataset.append_row",
    "full_domain.evaluate",
    "datafly.step",
    "samarati.evaluate",
    "incognito.node",
    "optimal.node",
    "pareto.node",
    "mondrian.split",
    "stochastic.evaluate",
    "clustering.cluster",
    "top_down.step",
    "bottom_up.step",
    "report.compare",
    "cmp.read",
    "svc.execute",
    "net.accept",
    "net.read",
    "net.write",
    "net.close",
};

struct ArmedSite {
  Status status = Status::Internal("failpoint");
  int skip = 0;       // Remaining passes that succeed.
  int count = -1;     // Remaining fires; -1 = unlimited.
  int period = 0;     // 0 = fire consecutively; N = fire every Nth pass.
  int passes = 0;     // Post-skip passes seen (period bookkeeping).
  bool kill = false;  // Raise SIGKILL instead of returning `status`.
  int hits = 0;       // Times this site fired since arming.
};

// Fast path: nothing armed -> one relaxed load, no lock.
std::atomic<int> g_armed_count{0};

std::mutex& Mutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

std::unordered_map<std::string, ArmedSite>& Armed() {
  static auto* armed = new std::unordered_map<std::string, ArmedSite>;
  return *armed;
}

bool IsDeclared(const std::string& site) {
  for (const char* declared : kSites) {
    if (site == declared) return true;
  }
  return false;
}

bool ArmInternal(const std::string& site, ArmedSite armed) {
  if (!IsDeclared(site)) return false;
  std::lock_guard<std::mutex> lock(Mutex());
  auto [it, inserted] = Armed().insert_or_assign(site, std::move(armed));
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace

bool Enabled() {
#if defined(MDC_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

std::vector<std::string> AllSites() {
  return std::vector<std::string>(std::begin(kSites), std::end(kSites));
}

bool Arm(const std::string& site, Status status, int skip, int count,
         int period) {
  if (status.ok() || period < 0) return false;
  ArmedSite armed;
  armed.status = std::move(status);
  armed.skip = skip;
  armed.count = count;
  armed.period = period;
  return ArmInternal(site, std::move(armed));
}

bool ArmKill(const std::string& site, int skip, int count, int period) {
  if (period < 0) return false;
  ArmedSite armed;
  armed.skip = skip;
  armed.count = count;
  armed.period = period;
  armed.kill = true;
  return ArmInternal(site, std::move(armed));
}

Status ArmFromEnvSpec(const std::string& spec) {
  struct Clause {
    std::string site;
    std::string action;
    int skip = 0;
    int count = -1;
    int period = 0;
  };
  std::vector<Clause> clauses;
  for (const std::string& raw : StrSplit(spec, ';')) {
    std::string_view text = StripWhitespace(raw);
    if (text.empty()) continue;
    std::vector<std::string> fields = StrSplit(std::string(text), ':');
    std::vector<std::string> head = StrSplit(fields[0], '=');
    if (head.size() != 2 || head[0].empty() || head[1].empty()) {
      return Status::InvalidArgument("failpoint spec: clause '" +
                                     std::string(text) +
                                     "' is not site=action");
    }
    Clause clause;
    clause.site = head[0];
    clause.action = head[1];
    if (clause.action != "internal" && clause.action != "notfound" &&
        clause.action != "kill") {
      return Status::InvalidArgument("failpoint spec: unknown action '" +
                                     clause.action + "' in '" +
                                     std::string(text) + "'");
    }
    for (size_t i = 1; i < fields.size(); ++i) {
      std::vector<std::string> kv = StrSplit(fields[i], '=');
      std::optional<int64_t> value;
      if (kv.size() == 2) value = ParseInt64(kv[1]);
      if (!value.has_value() || *value < -1 || *value > 1 << 30) {
        return Status::InvalidArgument("failpoint spec: bad modifier '" +
                                       fields[i] + "' in '" +
                                       std::string(text) + "'");
      }
      // -1 is meaningful only for count (= unlimited); Arm/ArmKill refuse
      // a negative skip-schedule or period, so catching it here keeps the
      // whole-spec-or-nothing contract instead of aborting on MDC_CHECK.
      if (kv[0] == "skip") {
        if (*value < 0) {
          return Status::InvalidArgument("failpoint spec: skip must be >= 0 in '" +
                                         std::string(text) + "'");
        }
        clause.skip = static_cast<int>(*value);
      } else if (kv[0] == "count") {
        clause.count = static_cast<int>(*value);
      } else if (kv[0] == "period") {
        if (*value < 0) {
          return Status::InvalidArgument(
              "failpoint spec: period must be >= 0 in '" + std::string(text) +
              "'");
        }
        clause.period = static_cast<int>(*value);
      } else {
        return Status::InvalidArgument("failpoint spec: unknown modifier '" +
                                       kv[0] + "' in '" + std::string(text) +
                                       "'");
      }
    }
    if (!IsDeclared(clause.site)) {
      return Status::InvalidArgument("failpoint spec: unknown site '" +
                                     clause.site + "'");
    }
    clauses.push_back(std::move(clause));
  }
  // Validation passed for every clause; arm them all (atomically enough —
  // nothing above armed anything).
  for (const Clause& clause : clauses) {
    bool armed;
    if (clause.action == "kill") {
      armed = ArmKill(clause.site, clause.skip, clause.count, clause.period);
    } else {
      Status injected =
          clause.action == "internal"
              ? Status::Internal("injected by MDC_FAILPOINTS at " +
                                 clause.site)
              : Status::NotFound("injected by MDC_FAILPOINTS at " +
                                 clause.site);
      armed = Arm(clause.site, std::move(injected), clause.skip,
                  clause.count, clause.period);
    }
    MDC_CHECK(armed);
  }
  return Status::Ok();
}

void Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Armed().erase(site) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  g_armed_count.fetch_sub(static_cast<int>(Armed().size()),
                          std::memory_order_relaxed);
  Armed().clear();
}

int HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Armed().find(site);
  return it == Armed().end() ? 0 : it->second.hits;
}

Status Trigger(const char* site) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Armed().find(site);
  if (it == Armed().end()) return Status::Ok();
  ArmedSite& armed = it->second;
  if (armed.skip > 0) {
    --armed.skip;
    return Status::Ok();
  }
  if (armed.count == 0) return Status::Ok();
  if (armed.period > 0) {
    // Periodic arming: only every period-th post-skip pass fires.
    ++armed.passes;
    if (armed.passes % armed.period != 0) return Status::Ok();
  }
  if (armed.count > 0) --armed.count;
  ++armed.hits;
  if (armed.kill) {
    // Die exactly here: SIGKILL cannot be caught, so no destructor or
    // buffered write runs — the harness's model of a hard crash.
    std::raise(SIGKILL);
  }
  return armed.status;
}

}  // namespace mdc::failpoint
