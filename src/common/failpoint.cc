#include "common/failpoint.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace mdc::failpoint {
namespace {

// Every failpoint site in the library. MDC_FAILPOINT calls at undeclared
// sites still compile, but tests cannot arm them, which keeps this list
// the authoritative inventory that failpoint_test.cc covers one by one.
constexpr const char* kSites[] = {
    "csv.parse",
    "csv.read_file",
    "csv.read_short",
    "csv.write_file",
    "io.tmp_write",
    "io.fsync",
    "io.rename",
    "io.probe_dir",
    "spec.parse",
    "dataset.from_csv",
    "dataset.append_row",
    "full_domain.evaluate",
    "datafly.step",
    "samarati.evaluate",
    "incognito.node",
    "optimal.node",
    "pareto.node",
    "mondrian.split",
    "stochastic.evaluate",
    "clustering.cluster",
    "top_down.step",
    "bottom_up.step",
    "report.compare",
    "cmp.read",
};

struct ArmedSite {
  Status status = Status::Internal("failpoint");
  int skip = 0;       // Remaining passes that succeed.
  int count = -1;     // Remaining passes that fail; -1 = unlimited.
  int hits = 0;       // Times this site fired since arming.
};

// Fast path: nothing armed -> one relaxed load, no lock.
std::atomic<int> g_armed_count{0};

std::mutex& Mutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

std::unordered_map<std::string, ArmedSite>& Armed() {
  static auto* armed = new std::unordered_map<std::string, ArmedSite>;
  return *armed;
}

bool IsDeclared(const std::string& site) {
  for (const char* declared : kSites) {
    if (site == declared) return true;
  }
  return false;
}

}  // namespace

bool Enabled() {
#if defined(MDC_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

std::vector<std::string> AllSites() {
  return std::vector<std::string>(std::begin(kSites), std::end(kSites));
}

bool Arm(const std::string& site, Status status, int skip, int count) {
  if (!IsDeclared(site) || status.ok()) return false;
  std::lock_guard<std::mutex> lock(Mutex());
  auto [it, inserted] =
      Armed().insert_or_assign(site, ArmedSite{std::move(status), skip,
                                               count, 0});
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Armed().erase(site) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  g_armed_count.fetch_sub(static_cast<int>(Armed().size()),
                          std::memory_order_relaxed);
  Armed().clear();
}

int HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Armed().find(site);
  return it == Armed().end() ? 0 : it->second.hits;
}

Status Trigger(const char* site) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Armed().find(site);
  if (it == Armed().end()) return Status::Ok();
  ArmedSite& armed = it->second;
  if (armed.skip > 0) {
    --armed.skip;
    return Status::Ok();
  }
  if (armed.count == 0) return Status::Ok();
  if (armed.count > 0) --armed.count;
  ++armed.hits;
  return armed.status;
}

}  // namespace mdc::failpoint
