#include "common/metrics.h"

#include <bit>
#include <cstdio>
#include <deque>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/durable_io.h"

namespace mdc::metrics {
namespace {

// Fixed per-shard cell budget. Counters take one cell; histograms take
// kHistogramBuckets + 1. The engine declares a few dozen instruments;
// 4096 leaves room for growth and keeps a shard at 32 KiB.
constexpr size_t kShardCells = 4096;

struct Shard {
  std::atomic<uint64_t> cells[kShardCells] = {};
};

enum class Kind { kCounter, kGauge, kHistogram };

struct Instrument {
  Kind kind;
  size_t index;  // Into the per-kind deque below.
};

}  // namespace

// Process-wide registry. Intentionally leaked: thread-local shard
// destructors may run during process teardown, after function-local
// statics would have been destroyed. Lives outside the anonymous
// namespace so the friend declarations in metrics.h apply.
class Registry {
 public:
  static Registry& Get() {
    static Registry* registry = new Registry();
    return *registry;
  }

  Counter& GetCounter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = instruments_.find(std::string(name));
    if (it != instruments_.end()) {
      MDC_CHECK_MSG(it->second.kind == Kind::kCounter,
                    "metric name reused across kinds");
      return counters_[it->second.index];
    }
    MDC_CHECK_MSG(next_cell_ + 1 <= kShardCells, "metric cell budget exhausted");
    counters_.push_back(Counter(next_cell_++));
    instruments_[std::string(name)] = {Kind::kCounter, counters_.size() - 1};
    counter_names_.push_back(std::string(name));
    return counters_.back();
  }

  Gauge& GetGauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = instruments_.find(std::string(name));
    if (it != instruments_.end()) {
      MDC_CHECK_MSG(it->second.kind == Kind::kGauge,
                    "metric name reused across kinds");
      return gauges_[it->second.index];
    }
    gauges_.emplace_back();
    instruments_[std::string(name)] = {Kind::kGauge, gauges_.size() - 1};
    gauge_names_.push_back(std::string(name));
    return gauges_.back();
  }

  Histogram& GetHistogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = instruments_.find(std::string(name));
    if (it != instruments_.end()) {
      MDC_CHECK_MSG(it->second.kind == Kind::kHistogram,
                    "metric name reused across kinds");
      return histograms_[it->second.index];
    }
    MDC_CHECK_MSG(next_cell_ + kHistogramBuckets + 1 <= kShardCells,
                  "metric cell budget exhausted");
    histograms_.push_back(Histogram(next_cell_));
    next_cell_ += kHistogramBuckets + 1;
    instruments_[std::string(name)] = {Kind::kHistogram,
                                       histograms_.size() - 1};
    histogram_names_.push_back(std::string(name));
    return histograms_.back();
  }

  void RegisterShard(Shard* shard) {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(shard);
  }

  // Folds a dying thread's cells into the retired totals so its events
  // survive the thread.
  void RetireShard(Shard* shard) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < kShardCells; ++i) {
      retired_[i] += shard->cells[i].load(std::memory_order_relaxed);
    }
    for (auto it = shards_.begin(); it != shards_.end(); ++it) {
      if (*it == shard) {
        shards_.erase(it);
        break;
      }
    }
  }

  MetricsSnapshot Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> cells(retired_, retired_ + kShardCells);
    for (Shard* shard : shards_) {
      for (size_t i = 0; i < kShardCells; ++i) {
        cells[i] += shard->cells[i].load(std::memory_order_relaxed);
      }
    }
    MetricsSnapshot snapshot;
    for (size_t i = 0; i < counters_.size(); ++i) {
      snapshot.counters[counter_names_[i]] = cells[counters_[i].slot_];
    }
    for (size_t i = 0; i < gauges_.size(); ++i) {
      snapshot.gauges[gauge_names_[i]] = gauges_[i].Value();
    }
    for (size_t i = 0; i < histograms_.size(); ++i) {
      HistogramSnapshot hist;
      const size_t base = histograms_[i].base_slot_;
      hist.buckets.assign(cells.begin() + base,
                          cells.begin() + base + kHistogramBuckets);
      for (uint64_t bucket : hist.buckets) hist.count += bucket;
      hist.sum = cells[base + kHistogramBuckets];
      snapshot.histograms[histogram_names_[i]] = std::move(hist);
    }
    return snapshot;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < kShardCells; ++i) retired_[i] = 0;
    for (Shard* shard : shards_) {
      for (size_t i = 0; i < kShardCells; ++i) {
        shard->cells[i].store(0, std::memory_order_relaxed);
      }
    }
    for (Gauge& gauge : gauges_) gauge.Set(0);
  }

 private:
  Registry() = default;

  std::mutex mu_;
  std::map<std::string, Instrument> instruments_;
  // Deques: stable addresses for the references GetCounter et al return.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  size_t next_cell_ = 0;
  std::vector<Shard*> shards_;
  uint64_t retired_[kShardCells] = {};
};

namespace {

// Thread-local shard, registered on first event and folded into the
// retired totals when the thread exits.
struct ShardHandle {
  Shard shard;
  ShardHandle() { Registry::Get().RegisterShard(&shard); }
  ~ShardHandle() { Registry::Get().RetireShard(&shard); }
};

Shard& LocalShard() {
  thread_local ShardHandle handle;
  return handle.shard;
}

void AppendJsonString(std::string& out, const std::string& value) {
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

void Counter::Increment(uint64_t delta) {
  LocalShard().cells[slot_].fetch_add(delta, std::memory_order_relaxed);
}

size_t Histogram::BucketOf(uint64_t value) {
  size_t bucket = static_cast<size_t>(std::bit_width(value));
  return bucket < kHistogramBuckets ? bucket : kHistogramBuckets - 1;
}

void Histogram::Observe(uint64_t value) {
  Shard& shard = LocalShard();
  shard.cells[base_slot_ + BucketOf(value)].fetch_add(
      1, std::memory_order_relaxed);
  shard.cells[base_slot_ + kHistogramBuckets].fetch_add(
      value, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": {\"count\": " + std::to_string(hist.count) +
           ", \"sum\": " + std::to_string(hist.sum) + ", \"buckets\": [";
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(hist.buckets[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToCompactJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(out, name);
    out += ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(out, name);
    out += ":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(out, name);
    out += ":{\"count\":" + std::to_string(hist.count) +
           ",\"sum\":" + std::to_string(hist.sum) + ",\"buckets\":[";
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(hist.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::DeterministicCountersText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    for (const char* prefix : kDeterministicPrefixes) {
      if (name.rfind(prefix, 0) == 0) {
        out += name + "=" + std::to_string(value) + "\n";
        break;
      }
    }
  }
  return out;
}

Counter& GetCounter(std::string_view name) {
  return Registry::Get().GetCounter(name);
}

Gauge& GetGauge(std::string_view name) {
  return Registry::Get().GetGauge(name);
}

Histogram& GetHistogram(std::string_view name) {
  return Registry::Get().GetHistogram(name);
}

MetricsSnapshot Snapshot() { return Registry::Get().Snapshot(); }

void MergeCounters(const std::map<std::string, uint64_t>& values) {
  for (const auto& [name, value] : values) {
    if (value > 0) GetCounter(name).Increment(value);
  }
}

void ResetForTest() { Registry::Get().Reset(); }

Status WriteSnapshotFile(const std::string& path) {
  return DurableWriteFile(path, Snapshot().ToJson());
}

}  // namespace mdc::metrics
