// Lightweight span tracing with a bounded ring buffer and Chrome-trace
// JSON export.
//
// A span is one timed region of the pipeline: TRACE_SPAN("incognito/
// evaluate_wave") records its start, duration, owning thread, and parent
// span (the innermost enclosing span on the same thread) into a bounded
// in-memory buffer. Tracing is off by default and the disabled path is a
// single relaxed atomic load — no clock read, no allocation — so spans can
// stay in production code.
//
// The buffer is a hard bound, not a ring that silently rots: once full,
// new spans are dropped and counted (dropped()), so a trace is always an
// exact prefix of the run plus an explicit loss figure. Flush with
// WriteChromeTrace(), which renders the spans as Chrome-trace "X"
// (complete) events — load the file at chrome://tracing or
// https://ui.perfetto.dev — and writes it durably (temp + fsync + rename,
// common/durable_io.h).

#ifndef MDC_COMMON_TRACE_H_
#define MDC_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mdc::trace {

inline constexpr size_t kDefaultCapacity = 1 << 16;

struct SpanRecord {
  const char* name = nullptr;  // Static string from the TRACE_SPAN literal.
  uint32_t thread_id = 0;      // Small sequential id, first-span order.
  uint64_t span_id = 0;        // 1-based; 0 means "no span".
  uint64_t parent_id = 0;      // Innermost enclosing span on this thread.
  uint64_t start_us = 0;       // Microseconds since Enable().
  uint64_t duration_us = 0;
};

// Starts tracing into a fresh buffer of at most `capacity` spans. Calling
// Enable while enabled restarts (clears the buffer and the clock).
void Enable(size_t capacity = kDefaultCapacity);

// Stops recording; the buffer is retained for Spans()/WriteChromeTrace.
void Disable();

bool Enabled();

// Completed spans recorded so far, in completion order.
std::vector<SpanRecord> Spans();

// Spans rejected because the buffer was full.
uint64_t Dropped();

// {"traceEvents":[...]} with one "X" event per span.
std::string ChromeTraceJson();

// Durable write of ChromeTraceJson() to `path`.
Status WriteChromeTrace(const std::string& path);

// RAII span. Records on destruction; safe (and free) when tracing is
// disabled or becomes disabled mid-span.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  uint64_t span_id_ = 0;   // 0 when tracing was off at construction.
  uint64_t parent_id_ = 0;
  uint64_t start_us_ = 0;
};

}  // namespace mdc::trace

#define MDC_TRACE_CONCAT_INNER(a, b) a##b
#define MDC_TRACE_CONCAT(a, b) MDC_TRACE_CONCAT_INNER(a, b)

// Names one timed region; the literal must outlive the program (use string
// literals). Nesting is tracked per thread.
#define TRACE_SPAN(name) \
  ::mdc::trace::Span MDC_TRACE_CONCAT(_mdc_span_, __LINE__)(name)

#endif  // MDC_COMMON_TRACE_H_
