#include "common/csv.h"

#include <cerrno>
#include <cstdio>

#include "common/durable_io.h"
#include "common/failpoint.h"

namespace mdc {

StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text) {
  MDC_FAILPOINT("csv.parse");
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;

  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument(
              "quote in the middle of an unquoted CSV field");
        }
        in_quotes = true;
        row_started = true;
        ++i;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_started = true;
        ++i;
        break;
      case '\r':
        ++i;
        break;
      case '\n':
        if (row_started || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
        }
        row_started = false;
        ++i;
        break;
      default:
        field += c;
        row_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (row_started || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    if (row.size() == 1 && row[0].empty()) {
      // A bare newline would read back as "no record"; an explicitly
      // quoted empty field round-trips.
      out += "\"\"\n";
      continue;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  }
  return out;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  MDC_FAILPOINT("csv.read_file");
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    // ENOENT (missing) and EACCES (permission) map to distinct codes so
    // callers can tell "wrong path" from "wrong credentials".
    return ErrnoToStatus(errno, "cannot open file " + path);
  }
  std::string contents;
  char buffer[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  bool read_error = std::ferror(file) != 0;
  int read_errno = errno;
  std::fclose(file);
  if (read_error) {
    return ErrnoToStatus(read_errno, "short read on file " + path);
  }
  MDC_FAILPOINT("csv.read_short");
  return contents;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  MDC_FAILPOINT("csv.write_file");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return ErrnoToStatus(errno, "cannot open file for writing " + path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool write_error = written != contents.size();
  if (std::fclose(file) != 0) write_error = true;
  if (write_error) {
    return Status::Internal("write error on file: " + path);
  }
  return Status::Ok();
}

}  // namespace mdc
