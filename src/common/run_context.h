// Execution control for long-running anonymization work.
//
// The lattice searches (Incognito, Samarati, optimal/Pareto) are worst-case
// exponential in the number of quasi-identifiers; a serving stack cannot let
// them run unbounded. A RunContext carries the budgets of one logical run —
// a wall-clock deadline, a work-step budget, best-effort memory accounting,
// and a cooperative cancellation token — and every algorithm in anonymize/
// checks it at loop granularity via Check(). When a budget expires the
// algorithm either degrades to its best-so-far result (annotating the
// result's RunStats with truncated = true) or returns a clean Status with
// one of the budget codes (kDeadlineExceeded, kResourceExhausted,
// kCancelled). Never a hang, never a crash.
//
// Passing a null RunContext* means "unbounded": Check(nullptr) is free, so
// callers that do not care about budgets pay nothing.

#ifndef MDC_COMMON_RUN_CONTEXT_H_
#define MDC_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"

namespace mdc {

// Thread-safe cancellation flag shared between the requesting thread and
// the working thread. Copies share the same underlying flag.
class CancellationToken {
 public:
  CancellationToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { cancelled_->store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

// What a run actually consumed. Attached to algorithm results so callers
// can tell a complete answer from a truncated one.
struct RunStats {
  uint64_t steps = 0;        // Budget checkpoints passed (loop iterations).
  double elapsed_ms = 0.0;   // Wall-clock from RunContext creation.
  uint64_t memory_bytes = 0; // Best-effort charged allocations.
  bool truncated = false;    // True when a budget expired mid-run and the
                             // result is best-so-far, not the full answer.

  // "steps=123 elapsed_ms=4.5 truncated=false".
  std::string ToString() const;
};

// Budgets for one run. Not thread-safe except for cancellation (use one
// RunContext per run; cancel from other threads through the token).
class RunContext {
 public:
  // Default-constructed context is unbounded: Check() only counts steps.
  RunContext();

  // Fluent budget setters; call before the run starts.
  RunContext& set_deadline_ms(int64_t ms);     // Relative to now.
  RunContext& set_max_steps(uint64_t steps);
  RunContext& set_max_memory_bytes(uint64_t bytes);
  RunContext& set_cancellation(CancellationToken token);

  const CancellationToken& cancellation() const { return cancel_; }

  // Cooperative budget checkpoint, called once per loop iteration (node
  // evaluation, split, cluster, ...). Charges `steps` work-steps, then
  // reports the first exhausted budget:
  //   kCancelled         — the token was cancelled,
  //   kDeadlineExceeded  — the wall-clock deadline passed,
  //   kResourceExhausted — the step or memory budget ran out.
  // Budget errors are sticky: once non-OK, every later Check() fails too.
  Status Check(uint64_t steps = 1);

  // Best-effort memory accounting: algorithms charge their dominant
  // allocations (lattice tables, caches). Exceeding the budget makes the
  // next Check() return kResourceExhausted.
  void ChargeMemory(uint64_t bytes);
  void ReleaseMemory(uint64_t bytes);

  uint64_t steps() const { return steps_; }
  double elapsed_ms() const;
  uint64_t memory_bytes() const { return memory_bytes_; }

  // The sticky budget error, OK while every Check() has passed. Lets
  // callers that aggregate several runs report whether any budget fired
  // without spending a step on another Check().
  const Status& exhausted() const { return exhausted_; }

  // Snapshot of consumption so far; `truncated` is recorded verbatim.
  RunStats Stats(bool truncated = false) const;

  // Null-tolerant helpers so algorithms can take `RunContext* run =
  // nullptr` and stay zero-cost when unbounded.
  static Status Check(RunContext* run, uint64_t steps = 1) {
    return run == nullptr ? Status::Ok() : run->Check(steps);
  }
  static RunStats Stats(const RunContext* run, bool truncated = false) {
    return run == nullptr ? RunStats{0, 0.0, 0, truncated}
                          : run->Stats(truncated);
  }
  static void ChargeMemory(RunContext* run, uint64_t bytes) {
    if (run != nullptr) run->ChargeMemory(bytes);
  }

 private:
  std::chrono::steady_clock::time_point start_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::optional<uint64_t> max_steps_;
  std::optional<uint64_t> max_memory_bytes_;
  CancellationToken cancel_;
  uint64_t steps_ = 0;
  uint64_t memory_bytes_ = 0;
  Status exhausted_;  // Sticky first budget error.
};

}  // namespace mdc

#endif  // MDC_COMMON_RUN_CONTEXT_H_
