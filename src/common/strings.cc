#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mdc {

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(input.substr(start));
      break;
    }
    fields.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size()) {
    return std::nullopt;
  }
  return value;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string FormatCompact(double value, int max_digits) {
  std::string text = FormatDouble(value, max_digits);
  if (text.find('.') == std::string::npos) return text;
  size_t last = text.find_last_not_of('0');
  if (text[last] == '.') --last;
  text.erase(last + 1);
  return text;
}

}  // namespace mdc
