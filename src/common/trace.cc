#include "common/trace.h"

#include <atomic>
#include <chrono>
#include <mutex>

#include "common/durable_io.h"

namespace mdc::trace {
namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_dropped{0};
std::atomic<uint64_t> g_next_span_id{0};
std::atomic<uint32_t> g_next_thread_id{0};

std::mutex g_mu;                     // Guards buffer, capacity, epoch.
std::vector<SpanRecord> g_buffer;    // Bounded by g_capacity.
size_t g_capacity = kDefaultCapacity;
Clock::time_point g_epoch = Clock::now();

uint32_t LocalThreadId() {
  thread_local uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Innermost open span on this thread; parents for nested TRACE_SPANs.
thread_local std::vector<uint64_t> t_open_spans;

uint64_t NowUs() {
  Clock::time_point epoch;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    epoch = g_epoch;
  }
  Clock::time_point now = Clock::now();
  if (now < epoch) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - epoch)
          .count());
}

}  // namespace

void Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_buffer.clear();
  g_capacity = capacity;
  g_epoch = Clock::now();
  g_dropped.store(0, std::memory_order_relaxed);
  g_next_span_id.store(0, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

void Disable() { g_enabled.store(false, std::memory_order_release); }

bool Enabled() { return g_enabled.load(std::memory_order_acquire); }

std::vector<SpanRecord> Spans() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_buffer;
}

uint64_t Dropped() { return g_dropped.load(std::memory_order_relaxed); }

Span::Span(const char* name) : name_(name) {
  if (!g_enabled.load(std::memory_order_acquire)) return;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
  parent_id_ = t_open_spans.empty() ? 0 : t_open_spans.back();
  t_open_spans.push_back(span_id_);
  start_us_ = NowUs();
}

Span::~Span() {
  if (span_id_ == 0) return;
  if (!t_open_spans.empty() && t_open_spans.back() == span_id_) {
    t_open_spans.pop_back();
  }
  if (!g_enabled.load(std::memory_order_acquire)) return;
  SpanRecord record;
  record.name = name_;
  record.thread_id = LocalThreadId();
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  record.start_us = start_us_;
  uint64_t end_us = NowUs();
  record.duration_us = end_us >= start_us_ ? end_us - start_us_ : 0;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_buffer.size() < g_capacity) {
    g_buffer.push_back(record);
  } else {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string ChromeTraceJson() {
  std::vector<SpanRecord> spans = Spans();
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) out += ",";
    out += "\n  {\"name\": \"";
    out += span.name;  // TRACE_SPAN literals: no escaping needed by policy.
    out += "\", \"cat\": \"mdc\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(span.thread_id) +
           ", \"ts\": " + std::to_string(span.start_us) +
           ", \"dur\": " + std::to_string(span.duration_us) +
           ", \"args\": {\"span_id\": " + std::to_string(span.span_id) +
           ", \"parent_id\": " + std::to_string(span.parent_id) + "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": " +
         std::to_string(Dropped()) + "}}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  return DurableWriteFile(path, ChromeTraceJson());
}

}  // namespace mdc::trace
