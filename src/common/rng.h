// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (the census generator, the
// stochastic lattice search, test sweeps) take an explicit Rng so results
// are reproducible from a seed. The engine is splitmix64 feeding
// xoshiro256**, both public-domain algorithms, so streams are stable across
// platforms and standard-library versions (std::mt19937 distributions are
// not portable across implementations).

#ifndef MDC_COMMON_RNG_H_
#define MDC_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace mdc {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t NextUint64();

  // Uniform over [0, bound). `bound` must be positive. Uses rejection
  // sampling, so the distribution is exactly uniform.
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // Bernoulli with success probability `p` in [0, 1].
  bool NextBool(double p);

  // Samples an index in [0, weights.size()) with probability proportional
  // to weights[i]. Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  // Standard normal via Box–Muller.
  double NextGaussian();

  // Checkpoint support: the full engine state — the four xoshiro words
  // plus the Box–Muller spare (flag and bit-cast double) — packed into six
  // words. RestoreState(SaveState()) continues the stream exactly where it
  // was, which is what lets a resumed stochastic search replay the same
  // draws as an uninterrupted run.
  std::array<uint64_t, 6> SaveState() const;
  void RestoreState(const std::array<uint64_t, 6>& state);

  // Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace mdc

#endif  // MDC_COMMON_RNG_H_
