// Lightweight assertion macros for programming errors.
//
// The library does not use exceptions (it follows the Google C++ style
// guide); recoverable errors travel through mdc::Status, while violated
// invariants and API misuse abort the process with a diagnostic. The
// macros are always on — anonymization code is not hot enough for the
// checks to matter, and silent invariant corruption in a privacy library
// is far worse than a crash.

#ifndef MDC_COMMON_CHECK_H_
#define MDC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mdc {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const char* message) {
  std::fprintf(stderr, "MDC_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, (message[0] != '\0' ? " — " : ""), message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace mdc

// Aborts with a diagnostic if `condition` is false.
#define MDC_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::mdc::internal_check::CheckFailed(__FILE__, __LINE__, #condition, \
                                         "");                             \
    }                                                                     \
  } while (false)

// Aborts with a diagnostic and an explanatory message if `condition` is
// false. `message` must be a C string literal or `const char*`.
#define MDC_CHECK_MSG(condition, message)                                 \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::mdc::internal_check::CheckFailed(__FILE__, __LINE__, #condition, \
                                         (message));                      \
    }                                                                     \
  } while (false)

#define MDC_CHECK_EQ(a, b) MDC_CHECK((a) == (b))
#define MDC_CHECK_NE(a, b) MDC_CHECK((a) != (b))
#define MDC_CHECK_LT(a, b) MDC_CHECK((a) < (b))
#define MDC_CHECK_LE(a, b) MDC_CHECK((a) <= (b))
#define MDC_CHECK_GT(a, b) MDC_CHECK((a) > (b))
#define MDC_CHECK_GE(a, b) MDC_CHECK((a) >= (b))

#endif  // MDC_COMMON_CHECK_H_
