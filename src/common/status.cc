#include "common/status.h"

namespace mdc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kInfeasible:
      return "infeasible";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool IsBudgetCode(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kCancelled;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace mdc
