// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms.
//
// The engine's hot loops (wave-parallel node evaluation, per-row
// partitioning) cannot afford a contended atomic or a lock per event, so
// counter and histogram cells live in thread-local shards: an Increment or
// Observe is one relaxed fetch_add on a cell no other thread writes.
// Snapshot() merges on read — it sums every live shard plus the values
// retired threads folded in on exit — so reading is O(threads) and writing
// stays O(1). Merging is a pure sum of monotone cells, which makes
// Snapshot() idempotent: two snapshots with no events in between are
// equal, and a snapshot never perturbs the registry.
//
// Counters are the deterministic layer: an event count is a property of
// the work performed, not of the schedule, so for every counter
// incremented at a point the wave protocol replays deterministically
// (admission / commit order; see docs/observability.md for the naming
// scheme), the merged total is identical for any worker-thread count.
// Histograms record wall-clock durations and are NOT deterministic; their
// bucket counts still always sum to the (deterministic) observation count.
//
// Instruments are interned forever: GetCounter("x") returns the same
// Counter& for the life of the process, so call sites cache the reference
// in a function-local static (the MDC_METRIC_* macros do this) and pay the
// registry lookup once.

#ifndef MDC_COMMON_METRICS_H_
#define MDC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mdc::metrics {

// Power-of-two latency buckets: bucket b counts observations with
// bit_width(value) == b, i.e. [2^(b-1), 2^b). Bucket 0 is value == 0;
// the last bucket absorbs everything >= 2^(kHistogramBuckets-2).
inline constexpr size_t kHistogramBuckets = 28;

// Monotone event counter. Increment is one relaxed fetch_add on a
// thread-local cell.
class Counter {
 public:
  void Increment(uint64_t delta = 1);

 private:
  friend class Registry;
  explicit Counter(size_t slot) : slot_(slot) {}
  size_t slot_;
};

// Last-value instrument (queue depth, pool size). Set/Add hit one shared
// atomic — gauges are for low-rate state, not hot loops.
class Gauge {
 public:
  // Constructed only by the registry; obtain one via GetGauge().
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram of non-negative values (conventionally
// microseconds; name such metrics *_us). Observe is two relaxed adds on
// thread-local cells (bucket + sum).
class Histogram {
 public:
  void Observe(uint64_t value);

  // Bucket index for `value` under the power-of-two layout above.
  static size_t BucketOf(uint64_t value);

 private:
  friend class Registry;
  explicit Histogram(size_t base_slot) : base_slot_(base_slot) {}
  size_t base_slot_;  // kHistogramBuckets bucket cells, then one sum cell.
};

struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  // kHistogramBuckets entries.
  uint64_t count = 0;             // Sum of buckets.
  uint64_t sum = 0;               // Sum of observed values.

  bool operator==(const HistogramSnapshot&) const = default;
};

// Merged view of every instrument at one instant.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Stable JSON: {"counters":{...},"gauges":{...},"histograms":{...}},
  // keys sorted (std::map order), no whitespace dependence on content.
  std::string ToJson() const;

  // The same JSON with no newlines or indentation — one line, so the
  // newline-framed wire protocol can carry a live snapshot in a single
  // `ok metrics ...` reply.
  std::string ToCompactJson() const;

  // The deterministic subset: counters whose name starts with one of the
  // prefixes in kDeterministicPrefixes, rendered one "name=value" per
  // line in sorted order. This is what thread-count invariance tests
  // compare byte for byte.
  std::string DeterministicCountersText() const;
};

// Counter-name prefixes that are deterministic for a fixed seed/config
// regardless of worker-thread count (instrumented at wave admission /
// commit points). "eval." and "partition." counters are also
// schedule-independent for the wave searches but NOT for stochastic
// speculation, so they are excluded here.
// "net." counters are charged at protocol commit points in the socket
// front-end (a line fully parsed, a connection accepted/shed/reaped), so
// for a fixed client script they are independent of worker-thread count;
// client-side "client.*" counters are fault-timing-dependent and stay out.
// "perturb." and "perm." counters are committed serially in column /
// attribute admission order by the perturbation backend and the
// permutation-model builder, so they share the same invariance.
inline constexpr const char* kDeterministicPrefixes[] = {
    "search.", "run.", "batch.", "cmp.", "svc.", "net.", "perturb.", "perm."};

// Interns `name` (first call) and returns the process-wide instrument.
// The same name always maps to the same instrument; a name must not be
// reused across kinds (checked).
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);

// Merge-on-read over all shards. Never blocks writers for more than the
// shard-list mutex.
MetricsSnapshot Snapshot();

// Adds `values` into the registry (used to restore cumulative totals from
// a checkpointed snapshot: restored counters and new events sum).
void MergeCounters(const std::map<std::string, uint64_t>& values);

// Zeroes every cell (live shards, retired totals, gauges). Instruments
// stay interned. Tests call this between runs they want to compare.
void ResetForTest();

// Writes Snapshot().ToJson() durably (temp + fsync + rename).
Status WriteSnapshotFile(const std::string& path);

}  // namespace mdc::metrics

// Call-site macros: intern once per site via a function-local static, then
// one relaxed atomic per event.
#define MDC_METRICS_CONCAT_INNER(a, b) a##b
#define MDC_METRICS_CONCAT(a, b) MDC_METRICS_CONCAT_INNER(a, b)

#define MDC_METRIC_ADD(name, delta)                                  \
  do {                                                               \
    static ::mdc::metrics::Counter& MDC_METRICS_CONCAT(              \
        _mdc_counter_, __LINE__) = ::mdc::metrics::GetCounter(name); \
    MDC_METRICS_CONCAT(_mdc_counter_, __LINE__).Increment(delta);    \
  } while (false)
#define MDC_METRIC_INC(name) MDC_METRIC_ADD(name, 1)

#define MDC_METRIC_OBSERVE(name, value)                                  \
  do {                                                                   \
    static ::mdc::metrics::Histogram& MDC_METRICS_CONCAT(                \
        _mdc_histogram_, __LINE__) = ::mdc::metrics::GetHistogram(name); \
    MDC_METRICS_CONCAT(_mdc_histogram_, __LINE__).Observe(value);        \
  } while (false)

#endif  // MDC_COMMON_METRICS_H_
