#include "common/thread_pool.h"

#include <chrono>

#include "common/metrics.h"

namespace mdc {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  int spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(spawn));
  metrics::GetGauge("pool.workers").Add(spawn);
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  metrics::GetGauge("pool.workers").Add(-static_cast<int64_t>(workers_.size()));
}

int ThreadPool::ResolveThreadCount(int threads) {
  if (threads > 0) return threads;
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

void ThreadPool::RunJob(Job& job) {
  size_t completed = 0;
  while (true) {
    size_t index = job.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job.count) break;
    (*job.fn)(index);
    ++completed;
  }
  if (completed > 0) {
    std::lock_guard<std::mutex> lock(job.mu);
    job.done += completed;
    if (job.done >= job.count) job.done_cv.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Job> job;
    uint64_t wait_start = NowUs();
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this, seen] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    MDC_METRIC_OBSERVE("pool.worker_wait_us", NowUs() - wait_start);
    if (job != nullptr) RunJob(*job);
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  MDC_METRIC_INC("pool.jobs");
  MDC_METRIC_ADD("pool.indices", count);
  static metrics::Gauge& active = metrics::GetGauge("pool.active_jobs");
  active.Add(1);
  uint64_t job_start = NowUs();
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  RunJob(*job);
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&job] { return job->done >= job->count; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job_ == job) job_ = nullptr;
  }
  MDC_METRIC_OBSERVE("pool.job_us", NowUs() - job_start);
  active.Add(-1);
}

}  // namespace mdc
