#include "common/run_context.h"

#include "common/metrics.h"
#include "common/strings.h"

namespace mdc {

std::string RunStats::ToString() const {
  std::string text = "steps=" + std::to_string(steps);
  text += " elapsed_ms=" + FormatCompact(elapsed_ms, 3);
  if (memory_bytes > 0) {
    text += " memory_bytes=" + std::to_string(memory_bytes);
  }
  text += truncated ? " truncated=true" : " truncated=false";
  return text;
}

RunContext::RunContext() : start_(std::chrono::steady_clock::now()) {}

RunContext& RunContext::set_deadline_ms(int64_t ms) {
  deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return *this;
}

RunContext& RunContext::set_max_steps(uint64_t steps) {
  max_steps_ = steps;
  return *this;
}

RunContext& RunContext::set_max_memory_bytes(uint64_t bytes) {
  max_memory_bytes_ = bytes;
  return *this;
}

RunContext& RunContext::set_cancellation(CancellationToken token) {
  cancel_ = std::move(token);
  return *this;
}

Status RunContext::Check(uint64_t steps) {
  steps_ += steps;
  MDC_METRIC_ADD("run.steps", steps);
  if (!exhausted_.ok()) return exhausted_;
  if (cancel_.cancelled()) {
    MDC_METRIC_INC("run.cancelled");
    exhausted_ = Status::Cancelled("run cancelled after " +
                                   std::to_string(steps_) + " steps");
    return exhausted_;
  }
  if (deadline_.has_value() &&
      std::chrono::steady_clock::now() >= *deadline_) {
    exhausted_ = Status::DeadlineExceeded(
        "deadline exceeded after " + std::to_string(steps_) + " steps (" +
        FormatCompact(elapsed_ms(), 3) + " ms)");
    return exhausted_;
  }
  if (max_steps_.has_value() && steps_ > *max_steps_) {
    MDC_METRIC_INC("run.budget_exhausted");
    exhausted_ = Status::ResourceExhausted(
        "step budget of " + std::to_string(*max_steps_) + " exhausted");
    return exhausted_;
  }
  if (max_memory_bytes_.has_value() && memory_bytes_ > *max_memory_bytes_) {
    MDC_METRIC_INC("run.budget_exhausted");
    exhausted_ = Status::ResourceExhausted(
        "memory budget of " + std::to_string(*max_memory_bytes_) +
        " bytes exhausted (charged " + std::to_string(memory_bytes_) + ")");
    return exhausted_;
  }
  return Status::Ok();
}

void RunContext::ChargeMemory(uint64_t bytes) {
  memory_bytes_ += bytes;
  MDC_METRIC_ADD("run.memory_charged_bytes", bytes);
}

void RunContext::ReleaseMemory(uint64_t bytes) {
  memory_bytes_ = bytes > memory_bytes_ ? 0 : memory_bytes_ - bytes;
}

double RunContext::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

RunStats RunContext::Stats(bool truncated) const {
  return RunStats{steps_, elapsed_ms(), memory_bytes_, truncated};
}

}  // namespace mdc
