#include "common/snapshot.h"

#include <cstring>

namespace mdc {
namespace {

// Header: magic, format version, kind, payload version (u32 each) and the
// u64 payload length. Trailer: u32 CRC over everything before it.
constexpr size_t kHeaderSize = 4 * sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kTrailerSize = sizeof(uint32_t);

void AppendU32(std::string& out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void AppendU64(std::string& out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

uint32_t DecodeU32(const char* data) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

uint64_t DecodeU64(const char* data) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    auto* entries = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

SnapshotWriter::SnapshotWriter(SnapshotKind kind, uint32_t payload_version)
    : kind_(kind), payload_version_(payload_version) {}

void SnapshotWriter::WriteU32(uint32_t value) { AppendU32(payload_, value); }
void SnapshotWriter::WriteU64(uint64_t value) { AppendU64(payload_, value); }
void SnapshotWriter::WriteI64(int64_t value) {
  AppendU64(payload_, static_cast<uint64_t>(value));
}
void SnapshotWriter::WriteBool(bool value) {
  payload_.push_back(value ? 1 : 0);
}
void SnapshotWriter::WriteDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(payload_, bits);
}
void SnapshotWriter::WriteString(std::string_view value) {
  AppendU64(payload_, value.size());
  payload_.append(value.data(), value.size());
}
void SnapshotWriter::WriteU64Vec(const std::vector<uint64_t>& values) {
  AppendU64(payload_, values.size());
  for (uint64_t v : values) AppendU64(payload_, v);
}
void SnapshotWriter::WriteI32Vec(const std::vector<int>& values) {
  AppendU64(payload_, values.size());
  for (int v : values) AppendU32(payload_, static_cast<uint32_t>(v));
}

std::string SnapshotWriter::Finish() const {
  std::string framed;
  framed.reserve(kHeaderSize + payload_.size() + kTrailerSize);
  AppendU32(framed, kSnapshotMagic);
  AppendU32(framed, kSnapshotFormatVersion);
  AppendU32(framed, static_cast<uint32_t>(kind_));
  AppendU32(framed, payload_version_);
  AppendU64(framed, payload_.size());
  framed += payload_;
  AppendU32(framed, Crc32(framed));
  return framed;
}

StatusOr<SnapshotReader> SnapshotReader::Open(std::string_view bytes,
                                              SnapshotKind kind,
                                              uint32_t payload_version) {
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    return Status::InvalidArgument("snapshot truncated: " +
                                   std::to_string(bytes.size()) +
                                   " bytes is smaller than the frame");
  }
  if (DecodeU32(bytes.data()) != kSnapshotMagic) {
    return Status::InvalidArgument("snapshot magic mismatch");
  }
  uint32_t format = DecodeU32(bytes.data() + 4);
  if (format != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "snapshot container format version " + std::to_string(format) +
        " is not the supported " + std::to_string(kSnapshotFormatVersion));
  }
  uint32_t actual_kind = DecodeU32(bytes.data() + 8);
  if (actual_kind != static_cast<uint32_t>(kind)) {
    return Status::InvalidArgument(
        "snapshot kind " + std::to_string(actual_kind) + " where kind " +
        std::to_string(static_cast<uint32_t>(kind)) + " was expected");
  }
  uint32_t version = DecodeU32(bytes.data() + 12);
  if (version != payload_version) {
    return Status::InvalidArgument(
        "snapshot payload version " + std::to_string(version) +
        " is not the supported " + std::to_string(payload_version));
  }
  uint64_t payload_size = DecodeU64(bytes.data() + 16);
  // The declared length must match the bytes actually present; comparing
  // before allocating means a forged huge prefix cannot OOM.
  if (payload_size != bytes.size() - kHeaderSize - kTrailerSize) {
    return Status::InvalidArgument(
        "snapshot length prefix disagrees with the actual size");
  }
  uint32_t stored_crc = DecodeU32(bytes.data() + bytes.size() - kTrailerSize);
  uint32_t computed_crc =
      Crc32(bytes.substr(0, bytes.size() - kTrailerSize));
  if (stored_crc != computed_crc) {
    return Status::InvalidArgument("snapshot CRC mismatch: corrupt bytes");
  }
  return SnapshotReader(
      std::string(bytes.substr(kHeaderSize, payload_size)));
}

Status SnapshotReader::Need(size_t bytes) const {
  if (remaining() < bytes) {
    return Status::InvalidArgument(
        "snapshot payload exhausted: need " + std::to_string(bytes) +
        " bytes, have " + std::to_string(remaining()));
  }
  return Status::Ok();
}

StatusOr<uint32_t> SnapshotReader::ReadU32() {
  MDC_RETURN_IF_ERROR(Need(4));
  uint32_t value = DecodeU32(payload_.data() + pos_);
  pos_ += 4;
  return value;
}

StatusOr<uint64_t> SnapshotReader::ReadU64() {
  MDC_RETURN_IF_ERROR(Need(8));
  uint64_t value = DecodeU64(payload_.data() + pos_);
  pos_ += 8;
  return value;
}

StatusOr<int64_t> SnapshotReader::ReadI64() {
  MDC_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  return static_cast<int64_t>(bits);
}

StatusOr<bool> SnapshotReader::ReadBool() {
  MDC_RETURN_IF_ERROR(Need(1));
  unsigned char byte = static_cast<unsigned char>(payload_[pos_]);
  if (byte > 1) {
    return Status::InvalidArgument("snapshot bool byte is neither 0 nor 1");
  }
  ++pos_;
  return byte == 1;
}

StatusOr<double> SnapshotReader::ReadDouble() {
  MDC_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

StatusOr<std::string> SnapshotReader::ReadString() {
  MDC_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  // Checking against remaining() bounds the allocation by the input size.
  MDC_RETURN_IF_ERROR(Need(size));
  std::string value = payload_.substr(pos_, size);
  pos_ += size;
  return value;
}

StatusOr<std::vector<uint64_t>> SnapshotReader::ReadU64Vec() {
  MDC_ASSIGN_OR_RETURN(uint64_t count, ReadU64());
  MDC_RETURN_IF_ERROR(Need(count * 8 < count ? payload_.size() + 1
                                             : count * 8));
  std::vector<uint64_t> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MDC_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    values.push_back(v);
  }
  return values;
}

StatusOr<std::vector<int>> SnapshotReader::ReadI32Vec() {
  MDC_ASSIGN_OR_RETURN(uint64_t count, ReadU64());
  MDC_RETURN_IF_ERROR(Need(count * 4 < count ? payload_.size() + 1
                                             : count * 4));
  std::vector<int> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MDC_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
    values.push_back(static_cast<int>(v));
  }
  return values;
}

Status SnapshotReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument(
        "snapshot payload has " + std::to_string(remaining()) +
        " unread trailing bytes");
  }
  return Status::Ok();
}

}  // namespace mdc
