// Error handling for the mdc library.
//
// mdc::Status carries an error code and a human-readable message;
// mdc::StatusOr<T> carries either a value or a non-OK Status. The style
// follows RocksDB/Abseil: functions that can fail for data-dependent
// reasons return Status/StatusOr, while programming errors use MDC_CHECK.

#ifndef MDC_COMMON_STATUS_H_
#define MDC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace mdc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kInfeasible,  // No anonymization satisfying the constraints exists.
  // Execution-budget codes (see docs/error_handling.md): the run was cut
  // short by a wall-clock deadline, a step/memory budget, or cooperative
  // cancellation. Algorithms return these only when no usable best-so-far
  // result exists; otherwise they return the result with
  // RunStats::truncated set.
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
};

// True for the three execution-budget codes above. Algorithms use this to
// distinguish "budget ran out" (degrade gracefully) from genuine errors
// (propagate).
bool IsBudgetCode(StatusCode code);

// Returns a stable lower-case name for `code` ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

// Value-semantic error indicator. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    MDC_CHECK_MSG(code != StatusCode::kOk,
                  "use Status::Ok() for success, not a message");
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  // True iff this status carries one of the execution-budget codes.
  bool IsBudgetError() const { return IsBudgetCode(code_); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so that `return value;` and `return status;`
  // both work, mirroring absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}           // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {    // NOLINT
    MDC_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MDC_CHECK_MSG(ok(), "value() called on errored StatusOr");
    return *value_;
  }
  T& value() & {
    MDC_CHECK_MSG(ok(), "value() called on errored StatusOr");
    return *value_;
  }
  T&& value() && {
    MDC_CHECK_MSG(ok(), "value() called on errored StatusOr");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace mdc

// Propagates a non-OK status from an expression that yields mdc::Status.
#define MDC_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::mdc::Status _mdc_status = (expr);        \
    if (!_mdc_status.ok()) return _mdc_status; \
  } while (false)

// Evaluates a StatusOr expression; on error returns the status, otherwise
// move-assigns the value into `lhs` (which must already be declared or be a
// declaration, e.g. MDC_ASSIGN_OR_RETURN(auto x, Foo());).
#define MDC_ASSIGN_OR_RETURN(lhs, expr)                      \
  MDC_ASSIGN_OR_RETURN_IMPL_(                                \
      MDC_STATUS_CONCAT_(_mdc_statusor, __LINE__), lhs, expr)

#define MDC_STATUS_CONCAT_INNER_(a, b) a##b
#define MDC_STATUS_CONCAT_(a, b) MDC_STATUS_CONCAT_INNER_(a, b)
#define MDC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)   \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // MDC_COMMON_STATUS_H_
