#include "common/durable_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/failpoint.h"

namespace mdc {
namespace {

// Directory portion of `path` ("." when there is none), for fsyncing the
// directory entry after a rename.
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Best-effort fsync of a directory so a completed rename survives a power
// cut. Failures are ignored: some filesystems reject O_RDONLY directory
// fsync, and the rename has already happened atomically.
void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status ErrnoToStatus(int error_number, const std::string& context) {
  std::string message = context + ": " + std::strerror(error_number);
  switch (error_number) {
    case ENOENT:
      return Status::NotFound(std::move(message));
    case EACCES:
    case EPERM:
    case EROFS:
      return Status::FailedPrecondition(std::move(message));
    default:
      return Status::Internal(std::move(message));
  }
}

Status DurableWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return ErrnoToStatus(errno, "cannot create temp file " + tmp_path);
  }

  // Stages run under one Status so the temp file is removed on every
  // failure path; MDC_FAILPOINT would return before the cleanup.
  Status status = MDC_FAILPOINT_STATUS("io.tmp_write");
  if (status.ok() &&
      std::fwrite(contents.data(), 1, contents.size(), file) !=
          contents.size()) {
    status = Status::Internal("short write to temp file " + tmp_path);
  }
  if (status.ok()) status = MDC_FAILPOINT_STATUS("io.fsync");
  if (status.ok() && std::fflush(file) != 0) {
    status = ErrnoToStatus(errno, "flush of temp file " + tmp_path);
  }
  if (status.ok() && ::fsync(fileno(file)) != 0) {
    status = ErrnoToStatus(errno, "fsync of temp file " + tmp_path);
  }
  if (std::fclose(file) != 0 && status.ok()) {
    status = ErrnoToStatus(errno, "close of temp file " + tmp_path);
  }
  if (status.ok()) status = MDC_FAILPOINT_STATUS("io.rename");
  if (status.ok() &&
      std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    status = ErrnoToStatus(errno,
                           "rename " + tmp_path + " over " + path);
  }
  if (!status.ok()) {
    std::remove(tmp_path.c_str());  // `path` itself was never touched.
    return status;
  }
  SyncDir(DirName(path));
  return Status::Ok();
}

Status EnsureWritableDir(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("empty directory path");
  }
  struct stat info;
  if (::stat(path.c_str(), &info) != 0) {
    if (errno != ENOENT) {
      return ErrnoToStatus(errno, "cannot stat " + path);
    }
    if (::mkdir(path.c_str(), 0755) != 0) {
      return ErrnoToStatus(errno, "cannot create directory " + path);
    }
  } else if (!S_ISDIR(info.st_mode)) {
    return Status::FailedPrecondition(path +
                                      " exists but is not a directory");
  }
  MDC_FAILPOINT("io.probe_dir");
  const std::string probe =
      path + "/.mdc_probe_" + std::to_string(::getpid());
  std::FILE* file = std::fopen(probe.c_str(), "wb");
  if (file == nullptr) {
    Status status = ErrnoToStatus(errno, "directory " + path +
                                             " is not writable");
    if (status.code() == StatusCode::kNotFound) return status;
    return Status::FailedPrecondition(status.message());
  }
  std::fclose(file);
  std::remove(probe.c_str());
  return Status::Ok();
}

}  // namespace mdc
