// Small string utilities used throughout the library.

#ifndef MDC_COMMON_STRINGS_H_
#define MDC_COMMON_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mdc {

// Splits `input` at every occurrence of `delimiter`. Adjacent delimiters
// produce empty fields; an empty input produces a single empty field.
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

// Joins `parts` with `separator` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view input);

// Returns true if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Strict parses; return nullopt on any trailing garbage or overflow.
std::optional<int64_t> ParseInt64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

// Formats a double the way the paper prints numbers: trailing zeros after
// the decimal point are removed ("3.40" -> "3.4", "3.00" -> "3").
std::string FormatCompact(double value, int max_digits = 6);

}  // namespace mdc

#endif  // MDC_COMMON_STRINGS_H_
