// Cache-line/vector-aligned storage for the hot kernels.
//
// The SIMD comparison and gather kernels (core/compare_kernels.h,
// table/gather_kernels.h) stream contiguous columns with 256/512-bit
// loads and, at large N, nontemporal stores. None of them *require*
// alignment (every kernel uses unaligned loads and handles tails), but
// 64-byte alignment keeps every vector access within one cache line and
// lets the streaming-store paths run aligned full-width, so the column
// containers (PropertyMatrix, EncodedView) allocate through this
// allocator. property_matrix_test asserts the 64-byte contract.

#ifndef MDC_COMMON_ALIGNED_H_
#define MDC_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace mdc {

inline constexpr size_t kCacheLineBytes = 64;

// Minimal C++17 aligned allocator: operator new with std::align_val_t.
template <typename T, size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below type requirement");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

// Contiguous column storage aligned to a cache line.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

// True iff `p` sits on a kCacheLineBytes boundary (the testable contract).
inline bool IsCacheAligned(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) & (kCacheLineBytes - 1)) == 0;
}

}  // namespace mdc

#endif  // MDC_COMMON_ALIGNED_H_
