// Durable, atomic artifact writing.
//
// Reports, CSV exports, and checkpoints must never be observable half
// written: a crash mid-write has to leave either the complete previous
// artifact or no artifact at all. DurableWriteFile gets there the classic
// way — write to a temporary sibling, fsync it, then rename over the
// destination (rename(2) is atomic within a filesystem) and fsync the
// directory so the rename itself survives a power cut. Every stage has a
// failpoint ("io.tmp_write", "io.fsync", "io.rename") so tests can prove
// the no-torn-artifact property for a fault at any point.

#ifndef MDC_COMMON_DURABLE_IO_H_
#define MDC_COMMON_DURABLE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace mdc {

// Maps a C errno from a file operation to the closest Status code:
// ENOENT -> kNotFound, EACCES/EPERM/EROFS -> kFailedPrecondition,
// everything else -> kInternal. `context` names the operation and path.
Status ErrnoToStatus(int error_number, const std::string& context);

// Atomically replaces `path` with `contents`: temp write + fsync + rename
// + best-effort directory fsync. On any failure the temp file is removed
// and `path` is untouched (the previous artifact, if any, stays complete).
Status DurableWriteFile(const std::string& path, std::string_view contents);

// Verifies `path` is a writable directory, creating one level if missing.
// An existing non-directory or an unwritable directory is a clean
// kFailedPrecondition — callers (the CLI, the batch runner) use this to
// reject a bad --checkpoint-dir up front instead of failing mid-run.
// Writability is proved by creating and removing a probe file (failpoint
// "io.probe_dir").
Status EnsureWritableDir(const std::string& path);

}  // namespace mdc

#endif  // MDC_COMMON_DURABLE_IO_H_
